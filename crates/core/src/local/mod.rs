//! Local route inference (Section III-B): given the references `C_i` of a
//! query pair, infer the candidate local routes `ℛ_i`.
//!
//! Two algorithms — [`tgi`](crate::local::tgi::tgi) (traverse graph,
//! Algorithm 1) and [`nni`](crate::local::nni::nni) (constrained nearest
//! neighbours, Algorithm 2) — plus the density-switched hybrid
//! ([`infer_local_routes`]).

pub mod nni;
pub mod tgi;

use crate::params::{HrisParams, HybridPolarity, LocalAlgorithm};
use crate::reference::ReferenceSet;
use hris_roadnet::network::CandidateEdge;
use hris_roadnet::{RoadNetwork, Route, SegmentId};
use std::collections::HashSet;

/// Per-pair instrumentation (drives the ablation figures 11b–13b).
#[derive(Debug, Clone, Default)]
pub struct LocalStats {
    /// Which algorithm actually ran ("TGI" / "NNI").
    pub algorithm: &'static str,
    /// Constrained-kNN searches performed (NNI; Figure 5's cost measure).
    pub knn_searches: usize,
    /// Traverse-graph node count (TGI).
    pub traverse_nodes: usize,
    /// Traverse-graph links before reduction (TGI).
    pub traverse_edges_initial: usize,
    /// Traverse-graph links after reduction (TGI; equal to initial when
    /// reduction is disabled).
    pub traverse_edges_final: usize,
    /// Links added by the strong-connectivity augmentation (TGI).
    pub augmentation_links: usize,
    /// Reference-point density ρ (points/km²) the hybrid switch saw.
    pub density: f64,
}

/// A local route with no scoring attached (scoring happens globally).
pub type LocalRoute = Route;

/// The outcome of local inference for one query pair.
#[derive(Debug, Clone)]
pub struct LocalInferenceResult {
    /// Candidate local routes `ℛ_i` (deduplicated).
    pub routes: Vec<LocalRoute>,
    /// Which references travel on which road segment (for scoring).
    pub edge_index: RefEdgeIndex,
    /// The reference set this inference consumed.
    pub refs: ReferenceSet,
    /// Instrumentation.
    pub stats: LocalStats,
}

/// Maps road segments to the references traversing them.
///
/// A reference *travels by* segment `r` when `r` is a candidate edge of one
/// of its points (Definition 9). This index is built once per pair and
/// drives both the traverse graph and the popularity function.
///
/// Stored in compressed-sparse-row form — sorted segment keys with one flat,
/// sorted run of covering-reference indices per segment — instead of a
/// `HashMap<SegmentId, HashSet<usize>>`: the popularity kernel probes it per
/// route segment inside a sort comparator, so lookups must be cache-friendly
/// and hash-free, and iteration order is deterministic by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefEdgeIndex {
    /// Sorted distinct covered segments (the traverse-edge set `TE`).
    segs: Vec<SegmentId>,
    /// `offsets[i]..offsets[i + 1]` indexes `refs` for `segs[i]`.
    offsets: Vec<u32>,
    /// Sorted covering-reference indices, grouped per segment.
    refs: Vec<u32>,
    /// Exclusive upper bound on reference indices (sizes union bitsets).
    num_refs: usize,
}

impl RefEdgeIndex {
    /// Builds the index by looking up candidate edges of every reference
    /// point within `eps` metres (through the network's projection memo —
    /// reference points recur across pairs).
    #[must_use]
    pub fn build(net: &RoadNetwork, refs: &ReferenceSet, eps: f64) -> Self {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (ri, r) in refs.refs.iter().enumerate() {
            let ri = u32::try_from(ri).expect("reference index fits u32");
            for p in &r.points {
                for cand in net.candidate_edges_cached(p.pos, eps).iter() {
                    pairs.push((cand.segment.0, ri));
                }
            }
        }
        // Counting sort over the (small, dense) segment universe. The outer
        // loop above emits reference indices in ascending order, so a stable
        // scatter leaves every per-segment bucket sorted — same `(seg, ref)`
        // order `from_pairs` produces, without the comparison sort.
        let n = net.num_segments();
        let mut counts = vec![0u32; n + 1];
        for &(seg, _) in &pairs {
            counts[seg as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut slots: Vec<u32> = vec![0; pairs.len()];
        let mut cursor = counts.clone();
        for &(seg, ri) in &pairs {
            let c = &mut cursor[seg as usize];
            slots[*c as usize] = ri;
            *c += 1;
        }
        let mut segs: Vec<SegmentId> = Vec::new();
        let mut offsets: Vec<u32> = Vec::new();
        let mut out_refs: Vec<u32> = Vec::new();
        let mut num_refs = 0usize;
        for seg in 0..n {
            let (lo, hi) = (counts[seg] as usize, counts[seg + 1] as usize);
            if lo == hi {
                continue;
            }
            segs.push(SegmentId(seg as u32));
            offsets.push(out_refs.len() as u32);
            let start = out_refs.len();
            for &r in &slots[lo..hi] {
                if out_refs.len() > start && out_refs[out_refs.len() - 1] == r {
                    continue;
                }
                out_refs.push(r);
                num_refs = num_refs.max(r as usize + 1);
            }
        }
        if !segs.is_empty() {
            offsets.push(out_refs.len() as u32);
        }
        RefEdgeIndex {
            segs,
            offsets,
            refs: out_refs,
            num_refs,
        }
    }

    /// Builds the index from raw `(segment, reference index)` coverage
    /// pairs (duplicates welcome) — the synthetic-coverage entry point for
    /// tests and ablations.
    #[must_use]
    pub fn from_pairs(pairs: impl IntoIterator<Item = (SegmentId, usize)>) -> Self {
        // Each pair packs into one u64 key — `(segment, ref)` tuple order
        // and `(segment << 32) | ref` numeric order coincide, and sorting
        // plain u64s is markedly cheaper than sorting tuples.
        let mut keys: Vec<u64> = pairs
            .into_iter()
            .map(|(s, r)| {
                (u64::from(s.0) << 32)
                    | u64::from(u32::try_from(r).expect("reference index fits u32"))
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let mut segs: Vec<SegmentId> = Vec::new();
        let mut offsets = Vec::new();
        let mut refs = Vec::with_capacity(keys.len());
        let mut num_refs = 0usize;
        for key in keys {
            let (seg, r) = (SegmentId((key >> 32) as u32), key as u32);
            if segs.last() != Some(&seg) {
                segs.push(seg);
                offsets.push(refs.len() as u32);
            }
            refs.push(r);
            num_refs = num_refs.max(r as usize + 1);
        }
        offsets.push(refs.len() as u32);
        if segs.is_empty() {
            offsets.clear();
        }
        RefEdgeIndex {
            segs,
            offsets,
            refs,
            num_refs,
        }
    }

    /// References covering segment `r` (`C_i(r)` as a sorted slice of
    /// indices into `ReferenceSet::refs`), empty when none.
    #[must_use]
    pub fn refs_on(&self, seg: SegmentId) -> &[u32] {
        match self.segs.binary_search(&seg) {
            Ok(i) => &self.refs[self.offsets[i] as usize..self.offsets[i + 1] as usize],
            Err(_) => &[],
        }
    }

    /// Number of references covering segment `r` (`|C_i(r)|`).
    #[must_use]
    pub fn covering_count(&self, seg: SegmentId) -> usize {
        self.refs_on(seg).len()
    }

    /// Union of references covering any segment of `route` (`C_i(R)`),
    /// as sorted distinct indices.
    #[must_use]
    pub fn refs_on_route(&self, route: &Route) -> Vec<usize> {
        let mut words = vec![0u64; self.num_refs.div_ceil(64)];
        for seg in route.segments() {
            for &r in self.refs_on(*seg) {
                words[r as usize / 64] |= 1 << (r % 64);
            }
        }
        let mut out = Vec::new();
        for (w, &bits) in words.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(w * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }

    /// All traversed segments (the traverse-edge set `TE`), sorted.
    #[must_use]
    pub fn traverse_edges(&self) -> &[SegmentId] {
        &self.segs
    }

    /// `true` when no segment is covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }
}

/// Flat structure-of-arrays layout for candidate points: parallel
/// coordinate/offset/segment arrays feeding cache-friendly batch distance
/// kernels (the NNI admissibility tests evaluate distances to the same
/// anchor for every point of the cloud — one linear sweep over two `f64`
/// arrays instead of a pointer-chase per point).
#[derive(Debug, Clone, Default)]
pub struct CandidateSoA {
    /// X coordinates.
    pub xs: Vec<f64>,
    /// Y coordinates.
    pub ys: Vec<f64>,
    /// Arc-length offsets (metres from segment start); empty for bare
    /// point clouds.
    pub offsets: Vec<f64>,
    /// Segment ids; empty for bare point clouds.
    pub segment_ids: Vec<SegmentId>,
}

impl CandidateSoA {
    /// SoA view of candidate edges (projection points + offsets + segments).
    #[must_use]
    pub fn from_edges(cands: &[CandidateEdge]) -> Self {
        CandidateSoA {
            xs: cands.iter().map(|c| c.closest.x).collect(),
            ys: cands.iter().map(|c| c.closest.y).collect(),
            offsets: cands.iter().map(|c| c.offset).collect(),
            segment_ids: cands.iter().map(|c| c.segment).collect(),
        }
    }

    /// SoA view of a bare point cloud.
    #[must_use]
    pub fn from_points(points: impl IntoIterator<Item = hris_geo::Point>) -> Self {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for p in points {
            xs.push(p.x);
            ys.push(p.y);
        }
        CandidateSoA {
            xs,
            ys,
            offsets: Vec::new(),
            segment_ids: Vec::new(),
        }
    }

    /// Number of candidate points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` when the layout holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Batch distance kernel: Euclidean distance from every point to `q`,
    /// bit-identical to `Point::dist` per element (same subtractions, same
    /// fused sum, same square root).
    #[must_use]
    pub fn dists_to(&self, q: hris_geo::Point) -> Vec<f64> {
        self.xs
            .iter()
            .zip(&self.ys)
            .map(|(&x, &y)| hris_geo::Point::new(x, y).dist(q))
            .collect()
    }
}

/// Local-route popularity `f(R)` — Equation 1 with a normalised entropy.
///
/// The paper's raw entropy `Σ −x(r)·log x(r)` grows like `ln m` with the
/// number of covered segments `m`, so comparing routes of different lengths
/// systematically favours the longest one (harmless in the paper, where all
/// candidates of a pair are near-direct; decisive at our denser enumeration
/// scale — see DESIGN.md). We therefore use the *evenness* `entropy / ln m`
/// (∈ [0, 1], the paper's "uniformness of the distribution" reading, made
/// scale-free):
///
/// `f(R) = support(R) · (evenness + floor)`, where `support` is the mean
/// per-segment reference count `Σ_r |C_i(r)| / |R|` — again the scale-free
/// counterpart of the paper's `|⋃_r C_i(r)|`, which (like the raw entropy)
/// grows monotonically as segments are appended.
///
/// Reference support still dominates; evenness still prefers sustained
/// coverage over a single busy intersection (Figure 6); segments that no
/// reference travels drag the mean down, so routes straying off the
/// historical corridors lose; the floor keeps single-segment routes
/// (evenness defined as 1) and fully-concentrated distributions rankable.
///
/// This is the scoring kernel shared by route selection here and by the
/// global score in [`crate::global`].
#[must_use]
pub fn route_popularity(route: &Route, idx: &RefEdgeIndex, entropy_floor: f64) -> f64 {
    route_popularity_with(
        route,
        idx,
        entropy_floor,
        crate::params::PopularityModel::ScaleFree,
    )
}

/// [`route_popularity`] with an explicit [`PopularityModel`] — the ablation
/// entry point (`PaperLiteral` evaluates Equation 1 verbatim).
///
/// [`PopularityModel`]: crate::params::PopularityModel
#[must_use]
pub fn route_popularity_with(
    route: &Route,
    idx: &RefEdgeIndex,
    entropy_floor: f64,
    model: crate::params::PopularityModel,
) -> f64 {
    let union = idx.refs_on_route(route);
    if union.is_empty() {
        return 0.0;
    }
    let covered: Vec<usize> = route
        .segments()
        .iter()
        .map(|s| idx.covering_count(*s))
        .filter(|&c| c > 0)
        .collect();
    let total: usize = covered.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut entropy = 0.0;
    for &c in &covered {
        let x = c as f64 / total as f64;
        entropy -= x * x.ln();
    }
    match model {
        crate::params::PopularityModel::PaperLiteral => {
            // Equation 1 verbatim (floor still applied so single-segment
            // routes stay rankable in the multiplicative global score).
            union.len() as f64 * (entropy + entropy_floor)
        }
        crate::params::PopularityModel::ScaleFree => {
            let evenness = if covered.len() < 2 {
                1.0
            } else {
                entropy / (covered.len() as f64).ln()
            };
            let support = total as f64 / route.len() as f64;
            support * (evenness + entropy_floor)
        }
    }
}

/// Runs local inference for one pair, dispatching per
/// [`HrisParams::local_algorithm`] (the hybrid uses the reference-point
/// density and `τ`, Section III-B.3).
#[must_use]
pub fn infer_local_routes(
    net: &RoadNetwork,
    refs: ReferenceSet,
    qi_cands: &[CandidateEdge],
    qj_cands: &[CandidateEdge],
    params: &HrisParams,
) -> LocalInferenceResult {
    let edge_index = RefEdgeIndex::build(net, &refs, params.candidate_eps_m);
    let density = refs.density_per_km2();

    let use_tgi = match params.local_algorithm {
        LocalAlgorithm::Tgi => true,
        LocalAlgorithm::Nni => false,
        LocalAlgorithm::Hybrid => match params.hybrid_polarity {
            // Figure 10: TGI overtakes NNI once density exceeds τ.
            HybridPolarity::Fig10 => density >= params.tau_per_km2,
            HybridPolarity::PaperText => density < params.tau_per_km2,
        },
    };

    let (mut routes, mut stats) = if use_tgi {
        tgi::tgi(net, &edge_index, qi_cands, qj_cands, params)
    } else {
        nni::nni(net, &refs, qi_cands, qj_cands, params)
    };
    stats.density = density;

    // The plain shortest-path routes between the endpoint candidates are
    // always candidates too — the "null hypothesis" the history must beat.
    // They also anchor the detour-plausibility bound.
    let oracle = net.sp_oracle();
    let mut sp_len = f64::INFINITY;
    for a in qi_cands.iter().take(2) {
        for b in qj_cands.iter().take(2) {
            if let Some(sp) =
                oracle.route_between(a.segment, b.segment, hris_roadnet::CostModel::Distance)
            {
                sp_len = sp_len.min(sp.length(net));
                routes.push(sp);
            }
        }
    }

    // Deduplicate (after loop excision — graph projection can bridge via
    // backtracking), then keep the `max_local_routes` most *popular*
    // candidates — K-GRI ranks by popularity anyway, so the cap must not
    // discard the routes the history supports best.
    let routes = routes.into_iter().map(|r| r.without_loops(net)).collect();
    let mut routes = dedup_routes(routes, net, usize::MAX);
    // Plausibility bound: drop candidates detouring far beyond the shortest
    // network path between the pair's candidate edges.
    if sp_len.is_finite() {
        let bound = sp_len * params.max_detour_ratio.max(1.0);
        routes.retain(|r| r.length(net) <= bound);
    }
    // Precompute each route's popularity once: the previous in-comparator
    // evaluation recomputed the full scoring kernel O(n log n) times and
    // dominated the per-pair profile. The stable sort over identical key
    // values yields exactly the order the comparator-driven sort produced.
    let mut keyed: Vec<(f64, Route)> = routes
        .into_iter()
        .map(|r| {
            let f = route_popularity_with(
                &r,
                &edge_index,
                params.entropy_floor,
                params.popularity_model,
            );
            (f, r)
        })
        .collect();
    keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut routes: Vec<Route> = keyed.into_iter().map(|(_, r)| r).collect();
    routes.truncate(params.max_local_routes.max(1));

    LocalInferenceResult {
        routes,
        edge_index,
        refs,
        stats,
    }
}

/// Deduplicates routes and keeps connected ones, capping the count.
#[must_use]
pub fn dedup_routes(routes: Vec<Route>, net: &RoadNetwork, cap: usize) -> Vec<Route> {
    let mut seen: HashSet<Vec<SegmentId>> = HashSet::new();
    let mut out = Vec::new();
    for r in routes {
        if r.is_empty() || !r.is_connected(net) {
            continue;
        }
        if seen.insert(r.segments().to_vec()) {
            out.push(r);
            if out.len() >= cap.max(1) {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{RefKind, RefTrajectory};
    use hris_geo::Point;
    use hris_roadnet::{generator, NetworkConfig};
    use hris_traj::{GpsPoint, TrajId};

    fn net() -> RoadNetwork {
        generator::generate(&NetworkConfig {
            jitter_frac: 0.0,
            curve_frac: 0.0,
            removal_frac: 0.0,
            oneway_frac: 0.0,
            ..NetworkConfig::small(1)
        })
    }

    /// A reference walking from x=a to x=b, zig-zagging between two rows so
    /// the point cloud has a two-dimensional bounding box (finite density).
    fn make_ref(net: &RoadNetwork, a: f64, b: f64, id: u32) -> RefTrajectory {
        let n = 8;
        let points = (0..n)
            .map(|k| {
                let x = a + (b - a) * k as f64 / (n - 1) as f64;
                let y = if k % 2 == 0 { 0.0 } else { 200.0 };
                // Place points on the nearest road to keep candidates rich.
                let snapped = net.nearest_segment(Point::new(x, y)).unwrap().closest;
                GpsPoint::new(snapped, k as f64 * 30.0)
            })
            .collect();
        RefTrajectory {
            kind: RefKind::Simple,
            sources: vec![TrajId(id)],
            points,
        }
    }

    #[test]
    fn edge_index_links_refs_to_segments() {
        let net = net();
        let refs = ReferenceSet {
            refs: vec![make_ref(&net, 0.0, 800.0, 0), make_ref(&net, 0.0, 800.0, 1)],
        };
        let idx = RefEdgeIndex::build(&net, &refs, 40.0);
        assert!(!idx.is_empty());
        // Segments near the corridor should carry both references.
        let covered_by_both = idx
            .traverse_edges()
            .iter()
            .filter(|&&s| idx.covering_count(s) == 2)
            .count();
        assert!(covered_by_both > 0);
        // Union over any covered route equals {0, 1} somewhere.
        assert!(!idx.traverse_edges().is_empty());
        // CSR build matches the raw-pairs constructor and the uncached
        // candidate lookup.
        let mut pairs = Vec::new();
        for (ri, r) in refs.refs.iter().enumerate() {
            for p in &r.points {
                for cand in net.candidate_edges(p.pos, 40.0) {
                    pairs.push((cand.segment, ri));
                }
            }
        }
        assert_eq!(idx, RefEdgeIndex::from_pairs(pairs));
    }

    #[test]
    fn dedup_removes_duplicates_and_disconnected() {
        let net = net();
        let r = net.segments()[0].id;
        let s = net.next_segments(r)[0];
        let good = Route::new(vec![r, s]);
        let dup = Route::new(vec![r, s]);
        // A disconnected route: two random segments that don't touch.
        let far = net
            .segments()
            .iter()
            .find(|x| x.from != net.segment(r).to && x.id != r)
            .unwrap()
            .id;
        let bad = Route::new(vec![r, far]);
        let out = dedup_routes(vec![good.clone(), dup, bad, Route::empty()], &net, 10);
        assert_eq!(out, vec![good]);
    }

    #[test]
    fn dedup_caps_count() {
        let net = net();
        let routes: Vec<Route> = net
            .segments()
            .iter()
            .take(30)
            .map(|s| Route::new(vec![s.id]))
            .collect();
        assert_eq!(dedup_routes(routes, &net, 5).len(), 5);
    }

    #[test]
    fn hybrid_dispatch_uses_density() {
        let net = net();
        // Dense reference cloud → Fig10 polarity picks TGI.
        let refs = ReferenceSet {
            refs: (0..30).map(|i| make_ref(&net, 0.0, 600.0, i)).collect(),
        };
        let qi = net.candidate_edges(Point::new(0.0, 0.0), 80.0);
        let qj = net.candidate_edges(Point::new(600.0, 0.0), 80.0);
        let params = HrisParams {
            tau_per_km2: 1.0, // anything is "dense"
            ..HrisParams::default()
        };
        let res = infer_local_routes(&net, refs.clone(), &qi, &qj, &params);
        assert_eq!(res.stats.algorithm, "TGI");

        let params = HrisParams {
            tau_per_km2: f64::INFINITY, // nothing is dense
            ..HrisParams::default()
        };
        let res = infer_local_routes(&net, refs, &qi, &qj, &params);
        assert_eq!(res.stats.algorithm, "NNI");
    }
}
