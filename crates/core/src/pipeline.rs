//! The end-to-end HRIS pipeline (Figure 2 of the paper).
//!
//! Offline, [`Hris::preprocess`] turns raw GPS logs into an archive:
//! stay-point detection → trip partition → R-tree indexing (map matching of
//! archive points is implicit — all downstream consumers work through
//! candidate edges, which subsumes point-level matching and is robust to
//! archive noise).
//!
//! Online, [`Hris::infer_routes`] processes a query in the paper's three
//! phases — reference search per consecutive point pair, local route
//! inference (TGI/NNI/hybrid), and K-GRI global inference — and returns the
//! top-K scored routes. When a pair yields no references or no local routes
//! (data sparseness), a network shortest path between the pair's candidate
//! edges is inserted as the fallback local route, so the system degrades
//! gracefully instead of failing the whole query.

use crate::global::GlobalRoute;
use crate::local::{infer_local_routes, LocalInferenceResult, LocalStats, RefEdgeIndex};
use crate::params::HrisParams;
use crate::reference::{search_references, ReferenceSet};
use crate::scoring::{PaperScorer, RouteScorer, ScoringCtx};
use hris_mapmatch::{MapMatcher, MatchResult};
use hris_roadnet::network::CandidateEdge;
use hris_roadnet::{CostModel, RoadNetwork, Route, SegmentId};
use hris_traj::{partition_trips, GpsPoint, StayPointConfig, Trajectory, TrajectoryArchive};

/// A route suggested by HRIS with its (log) score.
#[derive(Debug, Clone)]
pub struct ScoredRoute {
    /// The suggested physical route.
    pub route: Route,
    /// `ln s(R)` — comparable across routes of the same query only.
    pub log_score: f64,
}

/// The History-based Route Inference System.
///
/// `Hris` is the algorithmic pipeline over borrowed data. All of its
/// inference methods funnel into the canonical
/// [`Hris::infer_routes_detailed`]; [`Hris::infer_routes`] and
/// [`Hris::infer_top1`] are thin projections of its output, so new code that
/// needs anything beyond the plain top-K list should call the detailed
/// entrypoint directly. For serving (caching, validation, observability, live
/// archives) wrap it in a [`QueryEngine`](crate::engine::QueryEngine) or use
/// the owned [`EngineHandle`](crate::handle::EngineHandle), whose canonical
/// entrypoint is `infer_query`.
pub struct Hris<'a> {
    net: &'a RoadNetwork,
    archive: TrajectoryArchive,
    params: HrisParams,
}

impl<'a> Hris<'a> {
    /// Builds the system over an already-preprocessed archive.
    #[must_use]
    pub fn new(net: &'a RoadNetwork, archive: TrajectoryArchive, params: HrisParams) -> Self {
        Hris {
            net,
            archive,
            params,
        }
    }

    /// Full offline preprocessing from raw GPS logs: stay-point detection,
    /// trip partition and indexing (Section II-B.1).
    #[must_use]
    pub fn preprocess(
        net: &'a RoadNetwork,
        raw_logs: &[Trajectory],
        stay_cfg: &StayPointConfig,
        params: HrisParams,
    ) -> Self {
        let trips: Vec<Trajectory> = raw_logs
            .iter()
            .flat_map(|log| partition_trips(log, stay_cfg))
            .collect();
        Hris::new(net, TrajectoryArchive::new(trips), params)
    }

    /// The underlying road network.
    #[must_use]
    pub fn network(&self) -> &RoadNetwork {
        self.net
    }

    /// The historical archive.
    #[must_use]
    pub fn archive(&self) -> &TrajectoryArchive {
        &self.archive
    }

    /// The active parameters.
    #[must_use]
    pub fn params(&self) -> &HrisParams {
        &self.params
    }

    /// Mutable access to the parameters (experiment sweeps).
    pub fn params_mut(&mut self) -> &mut HrisParams {
        &mut self.params
    }

    /// Infers the top-`k` routes of `query` (the problem statement).
    ///
    /// Thin wrapper over the canonical [`Hris::infer_routes_detailed`] that
    /// drops the per-pair statistics.
    #[must_use]
    pub fn infer_routes(&self, query: &Trajectory, k: usize) -> Vec<ScoredRoute> {
        self.infer_routes_detailed(query, k)
            .0
            .into_iter()
            .map(|g| ScoredRoute {
                route: g.route,
                log_score: g.log_score,
            })
            .collect()
    }

    /// The most likely single route — the map-matching application.
    ///
    /// Thin wrapper over the canonical [`Hris::infer_routes_detailed`] with
    /// `k = 1`.
    #[must_use]
    pub fn infer_top1(&self, query: &Trajectory) -> Option<ScoredRoute> {
        self.infer_routes(query, 1).into_iter().next()
    }

    /// Full inference with per-pair instrumentation — the **canonical**
    /// inference path every other `Hris` entrypoint wraps.
    #[must_use]
    pub fn infer_routes_detailed(
        &self,
        query: &Trajectory,
        k: usize,
    ) -> (Vec<GlobalRoute>, Vec<LocalStats>) {
        let locals = self.local_inference(query);
        let stats = locals.iter().map(|l| l.stats.clone()).collect();
        let globals =
            PaperScorer::from_params(&self.params).top_k(&ScoringCtx::new(self.net, &locals, k));
        (globals, stats)
    }

    /// Runs phases 1–2 for every consecutive pair of the query, including
    /// the shortest-path fallback for pairs that local inference could not
    /// cover.
    ///
    /// Candidate edges are computed once per query *point* and shared by the
    /// two pairs adjoining each interior point (an interior point is `q_j`
    /// of one pair and `q_i` of the next).
    #[must_use]
    pub fn local_inference(&self, query: &Trajectory) -> Vec<LocalInferenceResult> {
        match degenerate_local(self.net, query) {
            DegenerateQuery::Empty => return Vec::new(),
            DegenerateQuery::Single(result) => return vec![result],
            DegenerateQuery::No => {}
        }
        let cands: Vec<Vec<CandidateEdge>> = query
            .points
            .iter()
            .map(|p| self.query_candidates(p.pos))
            .collect();
        (0..query.len() - 1)
            .map(|i| {
                infer_pair(
                    self.net,
                    &self.archive,
                    &self.params,
                    query.points[i],
                    query.points[i + 1],
                    &cands[i],
                    &cands[i + 1],
                    &|a, b| {
                        self.net
                            .sp_oracle()
                            .route_between(a, b, CostModel::Distance)
                    },
                )
            })
            .collect()
    }

    /// Candidate edges of a query point, with nearest-segment fallback.
    pub(crate) fn query_candidates(&self, p: hris_geo::Point) -> Vec<CandidateEdge> {
        query_candidates(self.net, &self.params, p)
    }
}

/// Candidate edges of a query point, with nearest-segment fallback.
pub(crate) fn query_candidates(
    net: &RoadNetwork,
    params: &HrisParams,
    p: hris_geo::Point,
) -> Vec<CandidateEdge> {
    let mut c = net.candidate_edges(p, params.candidate_eps_m);
    if c.is_empty() {
        if let Some(nearest) = net.nearest_segment(p) {
            c.push(nearest);
        }
    }
    c.truncate(params.max_query_candidates.max(1));
    c
}

/// Outcome of the sub-two-point query check shared by `Hris` and the engine.
pub(crate) enum DegenerateQuery {
    /// No points (or a single point off the network): nothing to infer.
    Empty,
    /// A single point mapped to its nearest segment.
    Single(LocalInferenceResult),
    /// Two or more points: run the real pipeline.
    No,
}

/// Handles queries with fewer than two points.
pub(crate) fn degenerate_local(net: &RoadNetwork, query: &Trajectory) -> DegenerateQuery {
    match query.len() {
        0 => DegenerateQuery::Empty,
        1 => match net.nearest_segment(query.points[0].pos) {
            Some(c) => DegenerateQuery::Single(fallback_result(Route::new(vec![c.segment]))),
            None => DegenerateQuery::Empty,
        },
        _ => DegenerateQuery::No,
    }
}

/// Phases 1–2 for one consecutive query-point pair: reference search, local
/// route inference and the data-sparseness shortest-path fallback (routed
/// through `sp_fallback` so callers can interpose a cache).
///
/// This is the unit of work the [`engine::QueryEngine`](crate::engine)
/// parallelises: it only reads shared state, so pairs can run in any order —
/// or concurrently — without changing any result.
#[allow(clippy::too_many_arguments)]
pub(crate) fn infer_pair(
    net: &RoadNetwork,
    archive: &TrajectoryArchive,
    params: &HrisParams,
    qi: GpsPoint,
    qj: GpsPoint,
    qi_cands: &[CandidateEdge],
    qj_cands: &[CandidateEdge],
    sp_fallback: &dyn Fn(SegmentId, SegmentId) -> Option<Route>,
) -> LocalInferenceResult {
    let dt = (qj.t - qi.t).max(1.0);
    let ref_cfg = crate::reference::RefSearchConfig {
        phi: params.phi_m,
        splice_eps: params.splice_eps_m,
        splice_when_simple_below: params.splice_when_simple_below,
        max_refs: params.max_refs_per_pair,
        temporal: params.temporal_tolerance_s.map(|tol| (qi.t, tol)),
    };
    let refs = search_references(archive, qi.pos, qj.pos, dt, net.max_speed(), &ref_cfg);

    let mut result = if refs.is_empty() || qi_cands.is_empty() || qj_cands.is_empty() {
        LocalInferenceResult {
            routes: Vec::new(),
            edge_index: RefEdgeIndex::default(),
            refs,
            stats: LocalStats::default(),
        }
    } else {
        infer_local_routes(net, refs, qi_cands, qj_cands, params)
    };

    if result.routes.is_empty() {
        // Data sparseness fallback: shortest path between the best
        // candidate edges.
        if let (Some(a), Some(b)) = (qi_cands.first(), qj_cands.first()) {
            if let Some(r) = sp_fallback(a.segment, b.segment) {
                result.routes.push(r);
            }
        }
    }
    result
}

/// [`infer_pair`] with the full degradation chain for repaired queries:
/// when the configured local algorithm yields nothing, retry the pair with
/// TGI forced, then NNI forced, then the shortest-path fallback. Returns
/// whether any step beyond the primary inference was needed.
///
/// Only the engine's *repair path* calls this — valid queries keep the
/// plain [`infer_pair`] behaviour so their outputs cannot move a byte.
#[allow(clippy::too_many_arguments)]
pub(crate) fn infer_pair_chain(
    net: &RoadNetwork,
    archive: &TrajectoryArchive,
    params: &HrisParams,
    qi: GpsPoint,
    qj: GpsPoint,
    qi_cands: &[CandidateEdge],
    qj_cands: &[CandidateEdge],
    sp_fallback: &dyn Fn(SegmentId, SegmentId) -> Option<Route>,
    algorithm_fallback: bool,
) -> (LocalInferenceResult, bool) {
    let dt = (qj.t - qi.t).max(1.0);
    let ref_cfg = crate::reference::RefSearchConfig {
        phi: params.phi_m,
        splice_eps: params.splice_eps_m,
        splice_when_simple_below: params.splice_when_simple_below,
        max_refs: params.max_refs_per_pair,
        temporal: params.temporal_tolerance_s.map(|tol| (qi.t, tol)),
    };
    let refs = search_references(archive, qi.pos, qj.pos, dt, net.max_speed(), &ref_cfg);
    let usable = !refs.is_empty() && !qi_cands.is_empty() && !qj_cands.is_empty();

    let mut result = if usable {
        infer_local_routes(net, refs.clone(), qi_cands, qj_cands, params)
    } else {
        LocalInferenceResult {
            routes: Vec::new(),
            edge_index: RefEdgeIndex::default(),
            refs: refs.clone(),
            stats: LocalStats::default(),
        }
    };

    let mut fell_back = false;
    if result.routes.is_empty() && usable && algorithm_fallback {
        for alg in [
            crate::params::LocalAlgorithm::Tgi,
            crate::params::LocalAlgorithm::Nni,
        ] {
            let mut forced = params.clone();
            forced.local_algorithm = alg;
            let retry = infer_local_routes(net, refs.clone(), qi_cands, qj_cands, &forced);
            if !retry.routes.is_empty() {
                result = retry;
                fell_back = true;
                break;
            }
        }
    }

    if result.routes.is_empty() {
        if let (Some(a), Some(b)) = (qi_cands.first(), qj_cands.first()) {
            if let Some(r) = sp_fallback(a.segment, b.segment) {
                result.routes.push(r);
                fell_back = true;
            }
        }
    }
    (result, fell_back)
}

fn fallback_result(route: Route) -> LocalInferenceResult {
    LocalInferenceResult {
        routes: vec![route],
        edge_index: RefEdgeIndex::default(),
        refs: ReferenceSet::default(),
        stats: LocalStats::default(),
    }
}

/// Adapter giving HRIS the same [`MapMatcher`] interface as the baselines:
/// the matched route is the top-1 inferred global route (the paper's
/// evaluation protocol, Section IV-C: "we use the top-1 global route to
/// compute the accuracy of our approach").
pub struct HrisMatcher<'a> {
    /// The wrapped system.
    pub hris: &'a Hris<'a>,
}

impl MapMatcher for HrisMatcher<'_> {
    fn match_trajectory(&self, net: &RoadNetwork, traj: &Trajectory) -> Option<MatchResult> {
        let top = self.hris.infer_top1(traj)?;
        // Per-point matched candidates: the nearest candidate edge of each
        // point (HRIS is a route-level inference, not a point matcher).
        let matched = traj
            .points
            .iter()
            .filter_map(|p| net.nearest_segment(p.pos))
            .collect();
        Some(MatchResult {
            matched,
            route: top.route,
        })
    }

    fn name(&self) -> &'static str {
        "HRIS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hris_geo::Point;
    use hris_roadnet::{generator, NetworkConfig};
    use hris_traj::{resample_to_interval, SimConfig, Simulator, TrajId};

    fn setup() -> (RoadNetwork, TrajectoryArchive, Vec<Route>) {
        let net = generator::generate(&NetworkConfig::small(8));
        let mut sim = Simulator::new(
            &net,
            SimConfig {
                num_trips: 250,
                num_od_patterns: 10,
                min_trip_dist_m: 800.0,
                seed: 13,
                ..SimConfig::default()
            },
        );
        let (archive, routes) = sim.generate_archive();
        (net, archive, routes)
    }

    #[test]
    fn end_to_end_inference_on_popular_route() {
        // Paper-like scale: a 6 km city, 600 trips, multi-kilometre query.
        // (The tiny `setup()` town is too saturated for meaningful
        // inference: with φ = 500 m every trip references every pair.)
        let net = generator::generate(&NetworkConfig::default());
        let mut sim = Simulator::new(
            &net,
            SimConfig {
                num_trips: 600,
                num_od_patterns: 10,
                min_trip_dist_m: 3000.0,
                seed: 13,
                ..SimConfig::default()
            },
        );
        let (archive, routes) = sim.generate_archive();
        // Query: the most common route in the archive, resampled sparsely.
        let mut counts: std::collections::HashMap<&Route, usize> = std::collections::HashMap::new();
        for r in &routes {
            *counts.entry(r).or_default() += 1;
        }
        let (popular, _) = counts.into_iter().max_by_key(|&(_, c)| c).unwrap();
        let pts = hris_traj::simulator::drive_route(&net, popular, 0.0, 20.0, 0.8).unwrap();
        let dense = Trajectory::new(TrajId(0), pts);
        let query = resample_to_interval(&dense, 180.0);

        let hris = Hris::new(&net, archive, HrisParams::default());
        let top = hris.infer_top1(&query).expect("route inferred");
        assert!(top.route.is_connected(&net));
        let cov = top.route.common_length(popular, &net) / popular.length(&net);
        assert!(
            cov > 0.5,
            "top-1 should mostly track the true route, got {cov}"
        );
    }

    #[test]
    fn top_k_routes_are_sorted_and_distinct() {
        let (net, archive, routes) = setup();
        let pts = hris_traj::simulator::drive_route(&net, &routes[0], 0.0, 20.0, 0.8).unwrap();
        let query = resample_to_interval(&Trajectory::new(TrajId(0), pts), 240.0);
        let hris = Hris::new(&net, archive, HrisParams::default());
        let top = hris.infer_routes(&query, 5);
        assert!(!top.is_empty());
        for w in top.windows(2) {
            assert!(w[0].log_score >= w[1].log_score);
        }
        for i in 0..top.len() {
            for j in (i + 1)..top.len() {
                assert_ne!(top[i].route, top[j].route, "routes must be distinct");
            }
        }
    }

    #[test]
    fn empty_and_singleton_queries() {
        let (net, archive, _) = setup();
        let hris = Hris::new(&net, archive, HrisParams::default());
        let empty = Trajectory::new(TrajId(0), vec![]);
        assert!(hris.infer_routes(&empty, 3).is_empty());

        let single = Trajectory::new(
            TrajId(0),
            vec![hris_traj::GpsPoint::new(Point::new(100.0, 100.0), 0.0)],
        );
        let routes = hris.infer_routes(&single, 3);
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].route.len(), 1);
    }

    #[test]
    fn empty_archive_falls_back_to_shortest_paths() {
        let net = generator::generate(&NetworkConfig::small(8));
        let hris = Hris::new(&net, TrajectoryArchive::empty(), HrisParams::default());
        let query = Trajectory::new(
            TrajId(0),
            vec![
                hris_traj::GpsPoint::new(Point::new(0.0, 0.0), 0.0),
                hris_traj::GpsPoint::new(Point::new(700.0, 0.0), 180.0),
                hris_traj::GpsPoint::new(Point::new(1400.0, 200.0), 360.0),
            ],
        );
        let top = hris.infer_top1(&query).expect("fallback still answers");
        assert!(top.route.is_connected(&net));
        assert!(top.route.length(&net) > 0.0);
    }

    #[test]
    fn preprocess_partitions_raw_logs() {
        let net = generator::generate(&NetworkConfig::small(8));
        // One raw log with a big temporal gap → two trips.
        let mut pts = Vec::new();
        for k in 0..5 {
            pts.push(hris_traj::GpsPoint::new(
                Point::new(k as f64 * 100.0, 0.0),
                k as f64 * 30.0,
            ));
        }
        for k in 0..5 {
            pts.push(hris_traj::GpsPoint::new(
                Point::new(k as f64 * 100.0, 500.0),
                10_000.0 + k as f64 * 30.0,
            ));
        }
        let raw = Trajectory::new(TrajId(0), pts);
        let hris = Hris::preprocess(
            &net,
            &[raw],
            &StayPointConfig::default(),
            HrisParams::default(),
        );
        assert_eq!(hris.archive().num_trajectories(), 2);
    }

    #[test]
    fn matcher_adapter_names_and_matches() {
        let (net, archive, routes) = setup();
        let hris = Hris::new(&net, archive, HrisParams::default());
        let matcher = HrisMatcher { hris: &hris };
        assert_eq!(matcher.name(), "HRIS");
        let pts = hris_traj::simulator::drive_route(&net, &routes[0], 0.0, 20.0, 0.8).unwrap();
        let query = resample_to_interval(&Trajectory::new(TrajId(0), pts), 300.0);
        let m = matcher.match_trajectory(&net, &query).unwrap();
        assert_eq!(m.matched.len(), query.len());
        assert!(!m.route.is_empty());
    }
}
