//! **HRIS** — the History-based Route Inference System of
//! *"Reducing Uncertainty of Low-Sampling-Rate Trajectories"* (ICDE 2012).
//!
//! Given a low-sampling-rate query trajectory, HRIS infers its K most likely
//! routes by mining travel patterns from an archive of historical
//! trajectories, in three phases (Section III of the paper):
//!
//! 1. **Reference-trajectory search** ([`reference`](crate::reference)): for every consecutive
//!    query point pair, find the historical trajectories — natively existing
//!    (*simple*) or stitched from two overlapping ones (*spliced*) — that
//!    hint at how objects travel between those points.
//! 2. **Local route inference** ([`local`]): infer candidate routes per pair
//!    with the traverse-graph approach (TGI, Algorithm 1), the
//!    nearest-neighbor approach (NNI, Algorithm 2), or the density-switched
//!    hybrid.
//! 3. **Global route inference** ([`global`]): score local routes by
//!    popularity and transition confidence, and thread the top-K global
//!    routes with the K-GRI dynamic program (Algorithm 3).
//!
//! The end-to-end pipeline lives in [`pipeline::Hris`]; it also implements
//! the `MapMatcher` trait so it can be compared head-to-head against the
//! baselines (the paper's evaluation methodology).
//!
//! ```
//! use hris::{Hris, HrisParams};
//! use hris_roadnet::{generator, NetworkConfig};
//! use hris_traj::{SimConfig, Simulator};
//!
//! let net = generator::generate(&NetworkConfig::small(1));
//! let mut sim = Simulator::new(&net, SimConfig { num_trips: 50, ..SimConfig::default() });
//! let (archive, _truth) = sim.generate_archive();
//! let hris = Hris::new(&net, archive, HrisParams::default());
//! // `hris.infer_routes(&query, k)` returns the top-k scored routes.
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod engine;
pub mod freespace;
pub mod global;
pub mod handle;
pub mod local;
pub mod params;
pub mod pipeline;
pub mod reference;
pub mod scoring;

pub use audit::{QueryAudit, RouteExplanation};
pub use engine::{
    EngineCacheStats, EngineObs, QueryEngine, QueryOutcome, QueryResult, RejectReason,
};
pub use freespace::{infer_polyline, FreespaceParams};
pub use global::GlobalRoute;
#[allow(deprecated)] // legacy shims stay importable from the crate root
pub use global::{brute_force_top_k, brute_force_top_k_with, k_gri, k_gri_with};
pub use handle::EngineHandle;
pub use local::{LocalInferenceResult, LocalRoute};
pub use params::{
    AdmissionOptions, ConfigError, EngineConfig, EngineConfigBuilder, ExecMode, ExplainOptions,
    HrisParams, HybridPolarity, LocalAlgorithm, ObsOptions, PopularityModel, RerankOptions,
    ValidationOptions,
};
pub use pipeline::{Hris, HrisMatcher, ScoredRoute};
pub use reference::{search_references, RefKind, RefTrajectory, ReferenceSet};
pub use scoring::{
    configured_scorer, extract_features, train_logistic, ConfiguredScorer, LearnedScorer,
    PaperScorer, RerankModel, RerankOutcome, RouteFeatures, RouteScorer, ScoringCtx, SgdConfig,
};

// The telemetry-server surface of `EngineHandle::serve_metrics`, re-exported
// so consumers need not name hris-obs directly.
pub use hris_obs::{
    AuditRecord, AuditRing, Health, MetricsRegistry, MetricsServer, ServeState, TraceContext,
};

/// Everything a typical consumer needs, in one `use`.
///
/// ```
/// use hris::prelude::*;
/// ```
///
/// Re-exports the serving surface (owned [`EngineHandle`], borrowed
/// [`Hris`]/[`QueryEngine`]), the result types ([`QueryResult`],
/// [`QueryOutcome`], [`ScoredRoute`], [`GlobalRoute`]), the configuration
/// types ([`HrisParams`], [`EngineConfig`] and its builder) and the live
/// ingestion types from [`hris_traj`] ([`ArchiveSnapshot`],
/// [`ArchiveWriter`] and friends).
///
/// [`ArchiveSnapshot`]: hris_traj::ArchiveSnapshot
/// [`ArchiveWriter`]: hris_traj::ArchiveWriter
pub mod prelude {
    pub use crate::engine::{
        EngineCacheStats, EngineObs, QueryEngine, QueryOutcome, QueryResult, RejectReason,
    };
    pub use crate::global::GlobalRoute;
    pub use crate::handle::EngineHandle;
    pub use crate::params::{
        ConfigError, EngineConfig, EngineConfigBuilder, ExecMode, HrisParams, ObsOptions,
        RerankOptions, ValidationOptions,
    };
    pub use crate::pipeline::{Hris, HrisMatcher, ScoredRoute};
    pub use crate::scoring::{LearnedScorer, PaperScorer, RerankModel, RouteScorer, ScoringCtx};
    pub use hris_traj::{
        ArchiveSnapshot, ArchiveWriter, IngestOptions, IngestQueue, IngestReport, SnapshotReader,
        TrajectoryArchive,
    };
}
