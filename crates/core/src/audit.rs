//! The explain/audit document schema: *why* a query returned what it did.
//!
//! Aggregate metrics say how the engine is doing; a [`QueryAudit`] says what
//! one specific query saw — how many candidate edges each point matched, how
//! many local routes each pair produced, the top-K global routes with the
//! paper's own score and the re-ranker's feature vector and per-feature
//! weight·feature attributions, and any fallback/repair/shed events along
//! the way. Audits are opt-in ([`ExplainOptions`](crate::params::ExplainOptions)),
//! rendered once to JSON, and retained in an engine- or router-owned
//! [`AuditRing`](hris_obs::AuditRing) keyed by trace id, where
//! `/debug/explain/<trace_id>` and `experiments --audit-out` find them.
//!
//! The schema lives here (not in `hris-obs`) because it is defined by the
//! paper's pipeline: score components are Equation 1/2 quantities and the
//! feature vector is [`FEATURE_NAMES`] order.

use crate::global::GlobalRoute;
use crate::params::PopularityModel;
use crate::scoring::{extract_features, RerankModel, RouteFeatures, ScoringCtx, FEATURE_NAMES};
use hris_obs::AuditRecord;

/// JSON string escaping for event text (feature names are static and safe).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A finite f64 as a JSON number, non-finite as `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// `[f64]` zipped with [`FEATURE_NAMES`] as one JSON object.
fn feature_object(values: &[f64]) -> String {
    let body = FEATURE_NAMES
        .iter()
        .zip(values)
        .map(|(name, &v)| format!("\"{name}\":{}", json_f64(v)))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{body}}}")
}

/// One returned route, explained: the paper's score, the route's shape, and
/// — when a re-ranking model is configured — the feature vector the model
/// saw plus each feature's contribution `wᵢ·(xᵢ−μᵢ)/σᵢ` to the logit.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteExplanation {
    /// Position in the returned list (0 = top-1).
    pub rank: usize,
    /// The paper's `ln s(R)` (Equations 1 and 2 through K-GRI).
    pub log_score: f64,
    /// Road segments on the stitched route.
    pub segments: usize,
    /// Route length in metres.
    pub length_m: f64,
    /// Which local route was chosen for each query pair.
    pub local_indices: Vec<usize>,
    /// The re-ranking feature vector ([`FEATURE_NAMES`] order).
    pub features: RouteFeatures,
    /// The logistic model's score, when re-ranking is configured.
    pub rerank_score: Option<f64>,
    /// Per-feature logit contributions (parallel to [`FEATURE_NAMES`]),
    /// when re-ranking is configured.
    pub attributions: Option<Vec<f64>>,
}

impl RouteExplanation {
    /// Explains one candidate: extracts its features (with the same
    /// popularity knobs the scorer used, so the components line up with
    /// the DP's own `f`) and, given a model, scores and attributes it.
    #[must_use]
    pub fn explain(
        ctx: &ScoringCtx<'_>,
        candidate: &GlobalRoute,
        rank: usize,
        entropy_floor: f64,
        model: PopularityModel,
        rerank: Option<&RerankModel>,
    ) -> Self {
        let features = extract_features(ctx, candidate, entropy_floor, model);
        let (rerank_score, attributions) = match rerank {
            Some(m) => {
                let x = features.to_array();
                let attrs = (0..x.len())
                    .map(|i| m.weights[i] * (x[i] - m.means[i]) / m.scales[i])
                    .collect();
                (Some(m.score(&features)), Some(attrs))
            }
            None => (None, None),
        };
        RouteExplanation {
            rank,
            log_score: candidate.log_score,
            segments: candidate.route.len(),
            length_m: candidate.route.length(ctx.net),
            local_indices: candidate.local_indices.clone(),
            features,
            rerank_score,
            attributions,
        }
    }

    /// This explanation as one JSON object (compact, stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let indices = self
            .local_indices
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let rerank = match self.rerank_score {
            Some(s) => json_f64(s),
            None => "null".to_string(),
        };
        let attributions = match &self.attributions {
            Some(a) => feature_object(a),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"rank\":{},\"log_score\":{},\"segments\":{},\"length_m\":{},",
                "\"local_indices\":[{}],\"features\":{},",
                "\"rerank_score\":{},\"attributions\":{}}}"
            ),
            self.rank,
            json_f64(self.log_score),
            self.segments,
            json_f64(self.length_m),
            indices,
            feature_object(&self.features.to_array()),
            rerank,
            attributions,
        )
    }
}

/// The audit document of one query: identity, per-stage counts, the
/// explained top-K routes, and every noteworthy event on the way.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryAudit {
    /// The trace id tying this audit to its span tree and trace record.
    pub trace_id: u64,
    /// Engine- or router-assigned sequence number.
    pub query_id: u64,
    /// Query points.
    pub points: usize,
    /// Consecutive point pairs inferred.
    pub pairs: usize,
    /// How the query ended: `"served"`, `"degraded"`, `"rejected"` or
    /// `"shed"` (details in `events`).
    pub outcome: String,
    /// Candidate edges matched per query point, in point order.
    pub candidates_per_point: Vec<usize>,
    /// Local routes produced per pair, in pair order.
    pub local_routes_per_pair: Vec<usize>,
    /// Which scorer ranked the routes (`"paper"` or `"learned"`).
    pub scorer: String,
    /// The explained routes, best first (capped at
    /// [`ExplainOptions::top_k_routes`](crate::params::ExplainOptions)).
    pub routes: Vec<RouteExplanation>,
    /// Fallback / repair / reroute / shed events, in order of occurrence.
    pub events: Vec<String>,
}

impl QueryAudit {
    /// An empty audit for the given identity.
    #[must_use]
    pub fn new(trace_id: u64, query_id: u64) -> Self {
        QueryAudit {
            trace_id,
            query_id,
            ..QueryAudit::default()
        }
    }

    /// Appends one event line.
    pub fn push_event(&mut self, event: impl Into<String>) {
        self.events.push(event.into());
    }

    /// This audit as one JSON object (compact, stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let counts = |v: &[usize]| {
            v.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        };
        let routes = self
            .routes
            .iter()
            .map(RouteExplanation::to_json)
            .collect::<Vec<_>>()
            .join(",");
        let events = self
            .events
            .iter()
            .map(|e| format!("\"{}\"", escape(e)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"trace_id\":{},\"query_id\":{},\"points\":{},\"pairs\":{},",
                "\"outcome\":\"{}\",\"candidates_per_point\":[{}],",
                "\"local_routes_per_pair\":[{}],\"scorer\":\"{}\",",
                "\"routes\":[{}],\"events\":[{}]}}"
            ),
            self.trace_id,
            self.query_id,
            self.points,
            self.pairs,
            escape(&self.outcome),
            counts(&self.candidates_per_point),
            counts(&self.local_routes_per_pair),
            escape(&self.scorer),
            routes,
            events,
        )
    }

    /// Renders this audit into the ring's record form.
    #[must_use]
    pub fn into_record(self) -> AuditRecord {
        AuditRecord {
            trace_id: self.trace_id,
            query_id: self.query_id,
            json: self.to_json(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_json_shape_and_escaping() {
        let mut audit = QueryAudit::new(7, 3);
        audit.points = 4;
        audit.pairs = 3;
        audit.outcome = "served".to_string();
        audit.candidates_per_point = vec![2, 3, 1, 2];
        audit.local_routes_per_pair = vec![5, 4, 6];
        audit.scorer = "paper".to_string();
        audit.push_event("repair: pair 1 fell back to \"shortest path\"");
        let j = audit.clone().into_record();
        assert_eq!(j.trace_id, 7);
        assert_eq!(j.query_id, 3);
        assert!(j.json.starts_with("{\"trace_id\":7,\"query_id\":3,"));
        assert!(j.json.contains("\"candidates_per_point\":[2,3,1,2]"));
        assert!(j.json.contains("\"local_routes_per_pair\":[5,4,6]"));
        assert!(j.json.contains("fell back to \\\"shortest path\\\""));
        assert!(j.json.contains("\"routes\":[]"));
        assert!(serde_json::from_str::<serde_json::Value>(&j.json).is_ok());
        assert!(j.json.contains("\"outcome\":\"served\""));
    }

    #[test]
    fn route_explanation_renders_features_and_null_rerank() {
        let expl = RouteExplanation {
            rank: 0,
            log_score: -2.5,
            segments: 9,
            length_m: 1234.5,
            local_indices: vec![0, 2],
            features: RouteFeatures {
                turn_count: 1.0,
                mean_pair_popularity: 3.0,
                min_pair_popularity: 2.0,
                transition_sum: -0.5,
                travel_time_residual: 0.1,
                length_ratio: 1.2,
                support_density: 0.4,
                log_score: -2.5,
            },
            rerank_score: None,
            attributions: None,
        };
        let j = expl.to_json();
        assert!(j.contains("\"rank\":0"));
        assert!(j.contains("\"local_indices\":[0,2]"));
        assert!(j.contains("\"features\":{\"turn_count\":1,"));
        assert!(j.contains("\"rerank_score\":null"));
        assert!(j.contains("\"attributions\":null"));
        assert!(serde_json::from_str::<serde_json::Value>(&j).is_ok());
    }

    #[test]
    fn attributions_follow_the_model_arithmetic() {
        let features = RouteFeatures {
            turn_count: 2.0,
            mean_pair_popularity: 0.0,
            min_pair_popularity: 0.0,
            transition_sum: 0.0,
            travel_time_residual: 0.0,
            length_ratio: 1.0,
            support_density: 0.0,
            log_score: 0.0,
        };
        let mut model = RerankModel::zeroed();
        model.weights[0] = 0.5; // turn_count
        model.means[0] = 1.0;
        model.scales[0] = 2.0;
        let x = features.to_array();
        let contribution = model.weights[0] * (x[0] - model.means[0]) / model.scales[0];
        assert!((contribution - 0.25).abs() < 1e-12);
        // The same arithmetic the explain constructor applies per feature.
        let attrs: Vec<f64> = (0..x.len())
            .map(|i| model.weights[i] * (x[i] - model.means[i]) / model.scales[i])
            .collect();
        assert_eq!(attrs[0], contribution);
        assert!(attrs[1..].iter().all(|&a| a == 0.0));
    }
}
