//! Global route inference (Section III-C): scoring and the K-GRI dynamic
//! program (Algorithm 3).
//!
//! A global route `R = R₁ ⋄ R₂ ⋄ … ⋄ Rₙ` scores
//! `s(R) = Π f(Rᵢ) · Π g(Rᵢ, Rᵢ₊₁)` where
//!
//! - `f(R) = |⋃_{r∈R} C_i(r)| · Σ_{r∈R} −x(r)·log x(r)` (Equation 1):
//!   reference support scaled by the *entropy* of the per-segment reference
//!   distribution — a route with uniformly sustained traffic beats one with
//!   a single busy intersection (Figure 6);
//! - `g(R_a, R_b) = exp(J(C_i(R_a), C_{i+1}(R_b)) − 1)` (Equation 2): the
//!   Jaccard overlap of the *underlying historical trajectories* on the two
//!   local routes — shared through-traffic means they chain confidently.
//!
//! All arithmetic happens in log space to avoid underflow across long
//! queries. K-GRI exploits the downward-closure property — every prefix of
//! a top-K global route is itself top-K among routes ending at the same
//! local route — for an `O(K·n·m²)` DP; [`brute_force_top_k`] is the
//! `O(mⁿ)` oracle used for Figure 14b and as a test oracle.

use crate::local::LocalInferenceResult;
use crate::params::PopularityModel;
use hris_roadnet::{CostModel, RoadNetwork, Route};
use hris_traj::TrajId;
use std::collections::HashSet;

/// A scored global route.
#[derive(Debug, Clone)]
pub struct GlobalRoute {
    /// Which local route was chosen for each query pair.
    pub local_indices: Vec<usize>,
    /// The physical route (local routes concatenated and bridged).
    pub route: Route,
    /// `ln s(R)`.
    pub log_score: f64,
}

/// Local-route popularity `f(R)` (Equation 1), with a configurable entropy
/// floor.
///
/// The paper's entropy term is exactly zero for a single-segment route
/// (`x = 1 → −x·log x = 0`), which would annihilate the multiplicative
/// global score of any query pair whose best local route is one segment
/// long. The `entropy_floor` (default 0.05, documented in DESIGN.md) keeps
/// such routes rankable while preserving the ordering among multi-segment
/// routes.
#[deprecated(note = "use `hris::local::route_popularity` (or score through \
                     `hris::scoring::PaperScorer`)")]
#[must_use]
pub fn popularity(route: &Route, local: &LocalInferenceResult, entropy_floor: f64) -> f64 {
    crate::local::route_popularity(route, &local.edge_index, entropy_floor)
}

/// [`popularity`] with an explicit [`PopularityModel`] (ablation).
#[deprecated(note = "use `hris::local::route_popularity_with` (or score through \
                     `hris::scoring::PaperScorer`)")]
#[must_use]
pub fn popularity_with(
    route: &Route,
    local: &LocalInferenceResult,
    entropy_floor: f64,
    model: PopularityModel,
) -> f64 {
    crate::local::route_popularity_with(route, &local.edge_index, entropy_floor, model)
}

/// Underlying historical trajectory ids travelling on `route` — the
/// `C_i(R)` sets that the transition confidence intersects across pairs.
#[must_use]
pub fn route_traj_ids(route: &Route, local: &LocalInferenceResult) -> HashSet<TrajId> {
    let mut out = HashSet::new();
    for ref_idx in local.edge_index.refs_on_route(route) {
        out.extend(local.refs.refs[ref_idx].sources.iter().copied());
    }
    out
}

/// `ln g(R_a, R_b)` = Jaccard(ids_a, ids_b) − 1 (Equation 2 in log space).
///
/// Ranges over `[−1, 0]`: identical sets give 0 (`g = 1`), disjoint sets
/// give −1 (`g = 1/e`). Two empty sets count as disjoint.
#[must_use]
pub fn log_transition_confidence(ids_a: &HashSet<TrajId>, ids_b: &HashSet<TrajId>) -> f64 {
    let inter = ids_a.intersection(ids_b).count();
    let union = ids_a.union(ids_b).count();
    let jaccard = if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    };
    jaccard - 1.0
}

/// Sorted, deduplicated trajectory ids on `route` — same contents as
/// [`route_traj_ids`], laid out for the merge-walk Jaccard in the DP inner
/// loop (no hashing per transition). Shared with the feature extractor in
/// [`crate::scoring`].
pub(crate) fn route_traj_ids_sorted(route: &Route, local: &LocalInferenceResult) -> Vec<TrajId> {
    let mut out: Vec<TrajId> = Vec::new();
    for ref_idx in local.edge_index.refs_on_route(route) {
        out.extend(local.refs.refs[ref_idx].sources.iter().copied());
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// [`log_transition_confidence`] over sorted deduplicated id slices.
///
/// Computes the same intersection/union counts via a linear merge walk, so
/// the resulting Jaccard (and hence the score) is bit-identical to the
/// hash-set version.
pub(crate) fn log_transition_confidence_sorted(a: &[TrajId], b: &[TrajId]) -> f64 {
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    let jaccard = if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    };
    jaccard - 1.0
}

/// Precomputed per-pair scoring ingredients.
struct PairScores {
    /// `ln f` per local route of the pair.
    log_f: Vec<f64>,
    /// Sorted trajectory-id lists per local route of the pair.
    ids: Vec<Vec<TrajId>>,
}

fn precompute(
    locals: &[LocalInferenceResult],
    entropy_floor: f64,
    model: PopularityModel,
) -> Vec<PairScores> {
    locals
        .iter()
        .map(|l| PairScores {
            log_f: l
                .routes
                .iter()
                .map(|r| {
                    crate::local::route_popularity_with(r, &l.edge_index, entropy_floor, model)
                        .max(1e-9)
                        .ln()
                })
                .collect(),
            ids: l
                .routes
                .iter()
                .map(|r| route_traj_ids_sorted(r, l))
                .collect(),
        })
        .collect()
}

/// Top-K Global Route Inference (Algorithm 3).
///
/// `locals` must have at least one local route per pair; pairs with no
/// routes make the result empty (the pipeline inserts shortest-path
/// fallbacks before calling this).
#[deprecated(note = "construct a `hris::scoring::PaperScorer` and call \
                     `RouteScorer::top_k`")]
#[must_use]
pub fn k_gri(
    net: &RoadNetwork,
    locals: &[LocalInferenceResult],
    k: usize,
    entropy_floor: f64,
) -> Vec<GlobalRoute> {
    k_gri_impl(net, locals, k, entropy_floor, PopularityModel::ScaleFree)
}

/// [`k_gri`] with an explicit [`PopularityModel`] (ablation).
#[deprecated(note = "construct a `hris::scoring::PaperScorer` and call \
                     `RouteScorer::top_k`")]
#[must_use]
pub fn k_gri_with(
    net: &RoadNetwork,
    locals: &[LocalInferenceResult],
    k: usize,
    entropy_floor: f64,
    model: PopularityModel,
) -> Vec<GlobalRoute> {
    k_gri_impl(net, locals, k, entropy_floor, model)
}

/// The K-GRI dynamic program itself — [`crate::scoring::PaperScorer`]
/// calls this; the deprecated [`k_gri_with`] shim delegates here so the
/// two are bit-identical by construction.
pub(crate) fn k_gri_impl(
    net: &RoadNetwork,
    locals: &[LocalInferenceResult],
    k: usize,
    entropy_floor: f64,
    model: PopularityModel,
) -> Vec<GlobalRoute> {
    if k == 0 || locals.is_empty() || locals.iter().any(|l| l.routes.is_empty()) {
        return Vec::new();
    }
    let scores = precompute(locals, entropy_floor, model);

    // M[j] — top-K partial assignments ending at local route j of pair i.
    type Partial = (f64, Vec<usize>); // (log score, chosen indices)
    let mut m: Vec<Vec<Partial>> = scores[0]
        .log_f
        .iter()
        .enumerate()
        .map(|(j, &f)| vec![(f, vec![j])])
        .collect();

    for i in 1..locals.len() {
        let mut next: Vec<Vec<Partial>> = vec![Vec::new(); scores[i].log_f.len()];
        for (j, slot) in next.iter_mut().enumerate() {
            let mut cands: Vec<Partial> = Vec::new();
            for (jp, prevs) in m.iter().enumerate() {
                let g = log_transition_confidence_sorted(&scores[i - 1].ids[jp], &scores[i].ids[j]);
                for (s, path) in prevs {
                    let mut np = path.clone();
                    np.push(j);
                    cands.push((s + g + scores[i].log_f[j], np));
                }
            }
            cands.sort_by(|a, b| b.0.total_cmp(&a.0));
            cands.truncate(k);
            *slot = cands;
        }
        m = next;
    }

    // Gather the global top-K across all final slots.
    let mut all: Vec<Partial> = m.into_iter().flatten().collect();
    all.sort_by(|a, b| b.0.total_cmp(&a.0));
    all.truncate(k);
    all.into_iter()
        .map(|(log_score, local_indices)| GlobalRoute {
            route: stitch(net, locals, &local_indices),
            local_indices,
            log_score,
        })
        .collect()
}

/// Brute-force oracle: enumerates all `Π |ℛ_i|` combinations.
///
/// Exponential — used for Figure 14b and to validate K-GRI in tests.
#[deprecated(note = "construct a `hris::scoring::PaperScorer` and call \
                     `RouteScorer::top_k_brute_force`")]
#[must_use]
pub fn brute_force_top_k(
    net: &RoadNetwork,
    locals: &[LocalInferenceResult],
    k: usize,
    entropy_floor: f64,
) -> Vec<GlobalRoute> {
    brute_force_top_k_impl(net, locals, k, entropy_floor, PopularityModel::ScaleFree)
}

/// [`brute_force_top_k`] with an explicit [`PopularityModel`] (ablation).
#[deprecated(note = "construct a `hris::scoring::PaperScorer` and call \
                     `RouteScorer::top_k_brute_force`")]
#[must_use]
pub fn brute_force_top_k_with(
    net: &RoadNetwork,
    locals: &[LocalInferenceResult],
    k: usize,
    entropy_floor: f64,
    model: PopularityModel,
) -> Vec<GlobalRoute> {
    brute_force_top_k_impl(net, locals, k, entropy_floor, model)
}

/// The exhaustive enumeration behind [`brute_force_top_k_with`], shared
/// with [`crate::scoring::PaperScorer`].
pub(crate) fn brute_force_top_k_impl(
    net: &RoadNetwork,
    locals: &[LocalInferenceResult],
    k: usize,
    entropy_floor: f64,
    model: PopularityModel,
) -> Vec<GlobalRoute> {
    if k == 0 || locals.is_empty() || locals.iter().any(|l| l.routes.is_empty()) {
        return Vec::new();
    }
    let scores = precompute(locals, entropy_floor, model);
    let mut best: Vec<(f64, Vec<usize>)> = Vec::new();
    let mut current = vec![0usize; locals.len()];
    enumerate(&scores, 0, 0.0, &mut current, &mut best, k);
    best.sort_by(|a, b| b.0.total_cmp(&a.0));
    best.truncate(k);
    best.into_iter()
        .map(|(log_score, local_indices)| GlobalRoute {
            route: stitch(net, locals, &local_indices),
            local_indices,
            log_score,
        })
        .collect()
}

fn enumerate(
    scores: &[PairScores],
    i: usize,
    acc: f64,
    current: &mut Vec<usize>,
    best: &mut Vec<(f64, Vec<usize>)>,
    k: usize,
) {
    if i == scores.len() {
        best.push((acc, current.clone()));
        if best.len() > 4 * k {
            best.sort_by(|a, b| b.0.total_cmp(&a.0));
            best.truncate(k);
        }
        return;
    }
    for j in 0..scores[i].log_f.len() {
        let mut s = acc + scores[i].log_f[j];
        if i > 0 {
            s += log_transition_confidence_sorted(
                &scores[i - 1].ids[current[i - 1]],
                &scores[i].ids[j],
            );
        }
        current[i] = j;
        enumerate(scores, i + 1, s, current, best, k);
    }
}

/// Concatenates the chosen local routes into one physical route, bridging
/// inter-pair gaps with network shortest paths (the paper: "we can always
/// use shortest path to bridge this gap").
fn stitch(net: &RoadNetwork, locals: &[LocalInferenceResult], indices: &[usize]) -> Route {
    let mut out = Route::empty();
    for (i, &j) in indices.iter().enumerate() {
        let part = &locals[i].routes[j];
        if out.is_empty() {
            out = part.clone();
            continue;
        }
        let prev_last = *out.segments().last().expect("non-empty");
        let next_first = *part.segments().first().expect("local routes non-empty");
        if prev_last == next_first {
            out = out.concat(part);
        } else {
            match net
                .sp_oracle()
                .route_between(prev_last, next_first, CostModel::Distance)
            {
                Some(bridge) => {
                    out = out.concat(&bridge);
                    out = out.concat(part);
                }
                None => out = out.concat(part),
            }
        }
    }
    // Bridging mismatched junction candidates can introduce backtracking;
    // excise the loops so the global route's length stays honest.
    out.without_loops(net)
}

#[cfg(test)]
#[allow(deprecated)] // the tests deliberately pin the legacy shims
mod tests {
    use super::*;
    use crate::local::{LocalStats, RefEdgeIndex};
    use crate::reference::{RefKind, RefTrajectory, ReferenceSet};
    use hris_geo::Point;
    use hris_roadnet::{generator, NetworkConfig, SegmentId};
    use hris_traj::GpsPoint;

    fn net() -> RoadNetwork {
        generator::generate(&NetworkConfig {
            jitter_frac: 0.0,
            curve_frac: 0.0,
            removal_frac: 0.0,
            oneway_frac: 0.0,
            ..NetworkConfig::small(5)
        })
    }

    /// Builds a synthetic LocalInferenceResult with hand-wired coverage.
    fn synth_local(
        net: &RoadNetwork,
        routes: Vec<Route>,
        coverage: &[(SegmentId, &[usize])],
        sources: &[&[u32]],
    ) -> LocalInferenceResult {
        let edge_index = RefEdgeIndex::from_pairs(
            coverage
                .iter()
                .flat_map(|(seg, refs)| refs.iter().map(move |&r| (*seg, r))),
        );
        let refs = ReferenceSet {
            refs: sources
                .iter()
                .map(|srcs| RefTrajectory {
                    kind: RefKind::Simple,
                    sources: srcs.iter().map(|&s| TrajId(s)).collect(),
                    points: vec![GpsPoint::new(Point::ORIGIN, 0.0)],
                })
                .collect(),
        };
        let _ = net;
        LocalInferenceResult {
            routes,
            edge_index,
            refs,
            stats: LocalStats::default(),
        }
    }

    /// Two consecutive pairs on a straight corridor with controllable
    /// popularity.
    fn corridor_locals(net: &RoadNetwork) -> Vec<LocalInferenceResult> {
        // Find a chain of 4 connected segments that never backtracks
        // (loop excision would collapse an out-and-back chain).
        let forward = |prev: SegmentId, net: &RoadNetwork| {
            net.next_segments(prev)
                .iter()
                .copied()
                .find(|&s| net.segment(s).to != net.segment(prev).from)
                .unwrap()
        };
        let s0 = net
            .segments()
            .iter()
            .find(|s| !net.next_segments(s.id).is_empty())
            .unwrap()
            .id;
        let s1 = forward(s0, net);
        let s2 = forward(s1, net);
        let s3 = forward(s2, net);
        // Pair 1 routes: [s0, s1] (popular, refs 0&1) and [s0] (ref 0 only).
        let l1 = synth_local(
            net,
            vec![Route::new(vec![s0, s1]), Route::new(vec![s0])],
            &[(s0, &[0, 1]), (s1, &[0, 1])],
            &[&[10], &[11]],
        );
        // Pair 2 routes: [s2, s3] covered by the same trajectories.
        let l2 = synth_local(
            net,
            vec![Route::new(vec![s2, s3]), Route::new(vec![s3])],
            &[(s2, &[0, 1]), (s3, &[0])],
            &[&[10], &[11]],
        );
        vec![l1, l2]
    }

    #[test]
    fn popularity_prefers_staying_on_covered_corridor() {
        let net = net();
        let forward = |prev: SegmentId| {
            net.next_segments(prev)
                .iter()
                .copied()
                .find(|&s| net.segment(s).to != net.segment(prev).from)
                .unwrap()
        };
        let s0 = net.segments()[0].id;
        let s1 = forward(s0);
        let s2 = forward(s1);
        // s0 and s1 carry two references each; s2 carries none.
        let local = synth_local(
            &net,
            vec![Route::new(vec![s0, s1]), Route::new(vec![s1, s2])],
            &[(s0, &[0, 1]), (s1, &[0, 1])],
            &[&[10], &[11]],
        );
        let on_corridor = popularity(&local.routes[0], &local, 0.05);
        let strays = popularity(&local.routes[1], &local, 0.05);
        assert!(
            on_corridor > strays,
            "{on_corridor} vs {strays}: uncovered segments must drag the score"
        );
    }

    #[test]
    fn popularity_zero_without_references() {
        let net = net();
        let locals = corridor_locals(&net);
        let uncovered = Route::new(vec![net.segments().last().unwrap().id]);
        assert_eq!(popularity(&uncovered, &locals[0], 0.05), 0.0);
    }

    #[test]
    fn entropy_prefers_uniform_distribution() {
        let net = net();
        let s0 = net.segments()[0].id;
        let s1 = net.next_segments(s0)[0];
        // Uniform: both segments covered by both refs.
        let uniform = synth_local(
            &net,
            vec![Route::new(vec![s0, s1])],
            &[(s0, &[0, 1]), (s1, &[0, 1])],
            &[&[1], &[2]],
        );
        // Bursty: all coverage heaped on one segment.
        let bursty = synth_local(
            &net,
            vec![Route::new(vec![s0, s1])],
            &[(s0, &[0, 1])],
            &[&[1], &[2]],
        );
        let fu = popularity(&uniform.routes[0], &uniform, 0.0);
        let fb = popularity(&bursty.routes[0], &bursty, 0.0);
        assert!(fu > fb, "uniform {fu} must beat bursty {fb}");
    }

    #[test]
    fn transition_confidence_bounds() {
        let a: HashSet<TrajId> = [TrajId(1), TrajId(2)].into_iter().collect();
        let b: HashSet<TrajId> = [TrajId(1), TrajId(2)].into_iter().collect();
        let c: HashSet<TrajId> = [TrajId(9)].into_iter().collect();
        assert_eq!(log_transition_confidence(&a, &b), 0.0); // g = 1
        assert_eq!(log_transition_confidence(&a, &c), -1.0); // g = 1/e
        let empty = HashSet::new();
        assert_eq!(log_transition_confidence(&empty, &empty), -1.0);
        let half = log_transition_confidence(&a, &[TrajId(1)].into_iter().collect());
        assert!(half > -1.0 && half < 0.0);
    }

    #[test]
    fn sorted_transition_matches_hashset_version() {
        let cases: &[(&[u32], &[u32])] = &[
            (&[1, 2, 3], &[2, 3, 4]),
            (&[1, 2], &[1, 2]),
            (&[1], &[9]),
            (&[], &[]),
            (&[5], &[]),
            (&[1, 3, 5, 7], &[2, 3, 5, 9]),
        ];
        for (a, b) in cases {
            let sa: HashSet<TrajId> = a.iter().map(|&x| TrajId(x)).collect();
            let sb: HashSet<TrajId> = b.iter().map(|&x| TrajId(x)).collect();
            let va: Vec<TrajId> = a.iter().map(|&x| TrajId(x)).collect();
            let vb: Vec<TrajId> = b.iter().map(|&x| TrajId(x)).collect();
            let h = log_transition_confidence(&sa, &sb);
            let s = log_transition_confidence_sorted(&va, &vb);
            assert_eq!(h.to_bits(), s.to_bits(), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn kgri_matches_brute_force() {
        let net = net();
        let locals = corridor_locals(&net);
        for k in 1..=4 {
            let dp = k_gri(&net, &locals, k, 0.05);
            let bf = brute_force_top_k(&net, &locals, k, 0.05);
            assert_eq!(dp.len(), bf.len(), "k={k}");
            for (d, b) in dp.iter().zip(bf.iter()) {
                assert!(
                    (d.log_score - b.log_score).abs() < 1e-9,
                    "k={k}: {} vs {}",
                    d.log_score,
                    b.log_score
                );
            }
            // Scores non-increasing.
            for w in dp.windows(2) {
                assert!(w[0].log_score >= w[1].log_score);
            }
        }
    }

    #[test]
    fn kgri_k_bounds_output() {
        let net = net();
        let locals = corridor_locals(&net);
        assert!(k_gri(&net, &locals, 0, 0.05).is_empty());
        let one = k_gri(&net, &locals, 1, 0.05);
        assert_eq!(one.len(), 1);
        // 2 pairs × 2 routes = 4 combinations max.
        let many = k_gri(&net, &locals, 100, 0.05);
        assert_eq!(many.len(), 4);
    }

    #[test]
    fn kgri_empty_pair_yields_empty() {
        let net = net();
        let mut locals = corridor_locals(&net);
        locals[1].routes.clear();
        assert!(k_gri(&net, &locals, 3, 0.05).is_empty());
    }

    #[test]
    fn stitched_route_is_connected() {
        let net = net();
        let locals = corridor_locals(&net);
        let top = k_gri(&net, &locals, 1, 0.05);
        assert_eq!(top.len(), 1);
        assert!(top[0].route.is_connected(&net));
        assert!(top[0].route.len() >= 2);
    }

    #[test]
    fn top1_picks_most_popular_chain() {
        let net = net();
        let locals = corridor_locals(&net);
        let top = k_gri(&net, &locals, 1, 0.05);
        // Pair 1's popular route is index 0 (two refs, sustained).
        assert_eq!(top[0].local_indices[0], 0);
    }
}
