//! HRIS parameters (Table II of the paper).

use hris_traj::SanitizeLimits;
use serde::{Deserialize, Serialize};

/// Which local-inference algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LocalAlgorithm {
    /// Traverse-graph based inference (Algorithm 1).
    Tgi,
    /// Nearest-neighbor based inference (Algorithm 2).
    Nni,
    /// Density-switched hybrid (Section III-B.3).
    #[default]
    Hybrid,
}

/// Which algorithm the hybrid picks below the density threshold `τ`.
///
/// The paper's prose says "if the density is lower than τ, TGI is selected",
/// but its own Figure 10 shows NNI *winning* at low density and TGI at high
/// density, and the surrounding discussion ("the performance of TGI and NNI
/// switch when ρ is about 200/km², therefore we can set τ = 200/km² so the
/// hybrid always adopts the better approach") only makes sense with the
/// Figure-10 polarity. We default to Figure 10 and expose both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum HybridPolarity {
    /// Low density → NNI, high density → TGI (consistent with Figure 10).
    #[default]
    Fig10,
    /// Low density → TGI, high density → NNI (the prose reading).
    PaperText,
}

/// Which form of Equation 1 scores local-route popularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PopularityModel {
    /// Scale-free variant: mean per-segment support × entropy evenness
    /// (deviation D1 in EXPERIMENTS.md; robust when candidate routes of a
    /// pair differ in length).
    #[default]
    ScaleFree,
    /// The paper's literal Equation 1: `|⋃_r C_i(r)| · Σ −x(r)·log x(r)`.
    /// Exposed for the ablation experiment; biased toward longer routes
    /// when candidates differ in length.
    PaperLiteral,
}

/// All tunables of HRIS, with Table II defaults.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HrisParams {
    /// Reference search radius `φ`, metres (Table II: 500 m).
    pub phi_m: f64,
    /// Splicing distance threshold `e` for spliced references, metres.
    pub splice_eps_m: f64,
    /// Spliced references are only constructed when fewer simple references
    /// than this were found (the paper motivates splicing for sparse areas).
    pub splice_when_simple_below: usize,
    /// Per-pair cap on references, keeping the ones closest to the query
    /// points (Figure 9's "irrelevant trajectories" observation).
    pub max_refs_per_pair: usize,
    /// Candidate-edge radius `ε` (Definition 5), metres.
    pub candidate_eps_m: f64,
    /// Maximum candidate edges per query point used as KSP endpoints.
    pub max_query_candidates: usize,
    /// Hybrid density threshold `τ`, reference points per km²
    /// (Table II: 200/km²).
    pub tau_per_km2: f64,
    /// Which way the hybrid switches at `τ`.
    pub hybrid_polarity: HybridPolarity,
    /// Which local algorithm to run (Hybrid reproduces the paper's system).
    pub local_algorithm: LocalAlgorithm,
    /// λ-neighborhood radius in hops (Table II: 4).
    pub lambda: usize,
    /// `k₁` — K of the K-shortest-path search in TGI (Table II: 5).
    pub k1: usize,
    /// Popularity discount `γ` of traverse-graph link weights:
    /// `w(u→v) = chain_dist · (1 + γ / (1 + |C_i(v)|))`.
    ///
    /// The paper leaves the traverse-graph weights unspecified ("top-K
    /// shortest paths on this traverse graph") and relies on sparse Beijing
    /// coverage to make the graph selective. At our denser simulated scale
    /// a pure-distance weight collapses TGI into plain shortest paths, so
    /// the discount realises the paper's stated intuition — "heavily
    /// traversed but longer" beats "shortest but untravelled" — directly in
    /// the weight. Set to 0.0 for the paper-literal distance weighting.
    pub tgi_popularity_weight: f64,
    /// Whether TGI applies transitive graph reduction (Figure 11b ablation).
    pub tgi_use_reduction: bool,
    /// `k₂` — constrained-kNN fan-out in NNI (Table II: 4).
    pub k2: usize,
    /// `α` — NNI's away-from-destination tolerance, metres (Table II: 500 m).
    pub alpha_m: f64,
    /// `β` — NNI's detour-ratio tolerance (Table II: 1.5).
    pub beta: f64,
    /// Whether NNI shares common substructures via the transit graph
    /// (Figure 13b ablation).
    pub nni_share_substructures: bool,
    /// Cap on enumerated NNI transit-graph paths per pair.
    pub nni_max_paths: usize,
    /// Cap on local routes kept per pair (bounds the K-GRI DP width).
    pub max_local_routes: usize,
    /// Plausibility bound on local routes: a candidate longer than
    /// `max_detour_ratio ×` the shortest network path between the pair's
    /// candidate edges is discarded.
    ///
    /// Equation 1's popularity grows with segment count (entropy over more
    /// terms), so without this bound the scoring systematically prefers the
    /// longest wandering candidate. The paper's Beijing setting masks the
    /// bias because its candidate routes are all near-direct; our denser
    /// enumeration surfaces it, hence the explicit bound (see DESIGN.md).
    pub max_detour_ratio: f64,
    /// `k₃` — K of the global top-K route inference (Table II default used
    /// in the accuracy experiments; the paper computes accuracy on top-1).
    pub k3: usize,
    /// Small additive entropy floor so single-segment local routes do not
    /// zero out the multiplicative global score (see `global::popularity`).
    pub entropy_floor: f64,
    /// Which popularity formula scores local routes (ablation knob).
    pub popularity_model: PopularityModel,
    /// Time-of-day tolerance for reference search, seconds (`None`
    /// disables). The paper's future-work extension: references observed at
    /// an incompatible time of day are ignored, so diurnal travel patterns
    /// (morning vs evening flows) inform the inference.
    pub temporal_tolerance_s: Option<f64>,
}

impl Default for HrisParams {
    fn default() -> Self {
        HrisParams {
            phi_m: 500.0,
            splice_eps_m: 150.0,
            splice_when_simple_below: 64,
            max_refs_per_pair: 512,
            candidate_eps_m: 60.0,
            max_query_candidates: 3,
            tau_per_km2: 200.0,
            hybrid_polarity: HybridPolarity::default(),
            local_algorithm: LocalAlgorithm::default(),
            lambda: 4,
            k1: 5,
            tgi_popularity_weight: 1.0,
            tgi_use_reduction: true,
            k2: 4,
            alpha_m: 500.0,
            beta: 1.5,
            nni_share_substructures: true,
            nni_max_paths: 16,
            max_local_routes: 12,
            max_detour_ratio: 1.6,
            k3: 2,
            entropy_floor: 0.05,
            popularity_model: PopularityModel::default(),
            temporal_tolerance_s: None,
        }
    }
}

/// How a [`QueryEngine`](crate::engine::QueryEngine) schedules the per-pair
/// work of one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ExecMode {
    /// Pairs run one after another on the calling thread.
    Sequential,
    /// Pairs of one query run concurrently on the thread pool (K-GRI still
    /// consumes them in query order).
    #[default]
    PairParallel,
}

/// Observability knobs of the [`QueryEngine`](crate::engine::QueryEngine).
///
/// Disabled (the default), the engine performs **zero** clock reads and zero
/// metric updates on the hot path; enabled, it records per-phase wall times,
/// queue/worker gauges and cache counters on a
/// [`MetricsRegistry`](hris_obs::MetricsRegistry), plus an opt-in per-query
/// trace ring. Like the rest of [`EngineConfig`], none of these options may
/// change any inferred route — they only spend a little time on visibility.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObsOptions {
    /// Master switch for engine instrumentation.
    pub enabled: bool,
    /// How many per-query [`TraceRecord`](hris_obs::TraceRecord)s the engine
    /// retains (oldest dropped first); `0` disables tracing while keeping
    /// the aggregate metrics.
    pub trace_capacity: usize,
    /// Queries slower than this wall time (seconds) are flagged `slow` in
    /// their trace and counted on `hris_engine_slow_queries_total`.
    pub slow_query_threshold_s: f64,
    /// Span-tree sampling period: one query in `span_sample_every` captures
    /// a live span tree (hierarchical phase spans with exemplar links into
    /// the latency histograms). `0` disables live capture. Slow queries
    /// that miss the sample still get a tree, synthesized from the phase
    /// timings already measured for the histograms — zero extra clock
    /// reads.
    pub span_sample_every: u64,
    /// `/healthz` staleness bound: a live engine whose newest archive
    /// snapshot is older than this many seconds reports its ingest check
    /// unhealthy (and `hris_snapshot_age_seconds` shows the age).
    pub staleness_bound_s: f64,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            enabled: false,
            trace_capacity: 256,
            slow_query_threshold_s: 1.0,
            span_sample_every: 16,
            staleness_bound_s: 300.0,
        }
    }
}

/// Input-validation and graceful-degradation knobs of the
/// [`QueryEngine`](crate::engine::QueryEngine).
///
/// Validation is a *screen*, not a rewrite: a query that satisfies the
/// engine's input contract (finite, in-range, time-ordered points) takes
/// exactly the unvalidated code path and returns byte-identical results —
/// pinned by `tests/engine_robustness.rs`. Only contract-violating queries
/// enter the repair/degradation path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationOptions {
    /// Master switch. Off, the engine trusts its inputs like the plain
    /// [`Hris`](crate::Hris) pipeline does (hostile inputs may misbehave).
    pub enabled: bool,
    /// Magnitude limits separating "far away" from "corrupt".
    pub limits: SanitizeLimits,
    /// On the repair path, retry a pair whose local inference came up empty
    /// with TGI then NNI explicitly before the shortest-path fallback.
    pub algorithm_fallback: bool,
}

impl Default for ValidationOptions {
    fn default() -> Self {
        ValidationOptions {
            enabled: true,
            limits: SanitizeLimits::default(),
            algorithm_fallback: true,
        }
    }
}

/// Admission-control policy for the owned serving fronts
/// ([`EngineHandle`](crate::handle::EngineHandle) and the sharded router).
///
/// Off by default: the engine then behaves exactly as before this option
/// existed — every request runs, none shed. Enabled, at most
/// `max_inflight` queries execute concurrently, up to `max_queued` more
/// wait in a bounded waiting room, and anything beyond that is shed
/// immediately with `Rejected{Overloaded}` (counted in
/// `hris_engine_shed_total` and the SLO burn counters). Batches are
/// admitted as a unit — one permit per `infer_batch` call — so a batch
/// is never half-shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionOptions {
    /// Master switch; off means unbounded (pre-admission behaviour).
    pub enabled: bool,
    /// Concurrent requests allowed to execute. Must be ≥ 1 when enabled
    /// (validated at build time).
    pub max_inflight: usize,
    /// Requests allowed to wait for an execution slot; `0` sheds as soon
    /// as all slots are busy.
    pub max_queued: usize,
}

impl Default for AdmissionOptions {
    fn default() -> Self {
        AdmissionOptions {
            enabled: false,
            max_inflight: 64,
            max_queued: 256,
        }
    }
}

/// Learned re-ranking of the K-GRI top-K output
/// ([`LearnedScorer`](crate::scoring::LearnedScorer)).
///
/// Off by default: the engine then scores with
/// [`PaperScorer`](crate::scoring::PaperScorer) alone and behaves exactly
/// as before this option existed, byte for byte. Enabled, the refine
/// phase re-orders the top-K list by the logistic model's score (stable —
/// ties keep the paper order); `log_score` fields keep the honest paper
/// scores. The sharded router applies the same options at its seam
/// splice, so sharded and single-engine outputs stay identical.
///
/// Enabling requires a [`RerankModel`](crate::scoring::RerankModel);
/// [`EngineConfigBuilder::rerank`] sets both and
/// [`EngineConfigBuilder::build`] validates the model's shape and
/// finiteness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RerankOptions {
    /// Master switch; off means pure paper scoring (the default).
    pub enabled: bool,
    /// The learned weights. Required when `enabled` (validated at build
    /// time); ignored otherwise.
    pub model: Option<crate::scoring::RerankModel>,
}

/// Opt-in explain/audit capture for the
/// [`QueryEngine`](crate::engine::QueryEngine) and the sharded router.
///
/// Off by default: the engine then performs zero extra work per query —
/// the disabled path stays byte-identical to the pre-explain engine and
/// keeps the zero-clock-read guarantee (both test-enforced). Enabled, each
/// query additionally records a structured [`QueryAudit`](crate::QueryAudit)
/// — candidate counts per point, the top-K routes with their paper score
/// components, the rerank feature vector with per-feature attributions, and
/// any fallback/repair/shed events — into a bounded
/// [`AuditRing`](hris_obs::AuditRing) keyed by trace id, served from
/// `/debug/explain/<trace_id>` and exportable via
/// `experiments --audit-out`. Like observability, explain may never change
/// an inferred route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExplainOptions {
    /// Master switch; off means no audits and no per-query overhead.
    pub enabled: bool,
    /// How many [`AuditRecord`](hris_obs::AuditRecord)s the ring retains
    /// (oldest dropped first). Must be ≥ 1 when enabled (validated at
    /// build time).
    pub audit_capacity: usize,
    /// How many of the returned routes get a full per-route explanation
    /// (score components + rerank attributions) in each audit.
    pub top_k_routes: usize,
}

impl Default for ExplainOptions {
    fn default() -> Self {
        ExplainOptions {
            enabled: false,
            audit_capacity: 256,
            top_k_routes: 3,
        }
    }
}

/// Tuning knobs of the [`QueryEngine`](crate::engine::QueryEngine); separate
/// from [`HrisParams`] because none of them may change any inferred route
/// *for valid inputs* — they only trade memory and threads for throughput,
/// plus the dirty-input screen of [`ValidationOptions`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Per-query pair scheduling.
    pub mode: ExecMode,
    /// Minimum number of point pairs before [`ExecMode::PairParallel`]
    /// actually fans out: shorter queries run sequentially on the calling
    /// thread, because the fork/join overhead of the pool exceeds the work
    /// of a couple of pairs (the e2e benchmark measured a 0.98× *slowdown*
    /// for pair-parallel on 3-pair queries). `0` always fans out.
    pub pair_parallel_min_pairs: usize,
    /// Entry bound of the shared shortest-path fallback cache; `0` disables
    /// the cache entirely.
    pub sp_cache_capacity: usize,
    /// Memoise `query_candidates` per exact point position, sharing work
    /// across the queries of a batch that revisit a location.
    pub candidate_memo: bool,
    /// Fan `infer_batch` out across queries on the thread pool.
    pub batch_parallel: bool,
    /// Runtime observability (off by default; zero overhead when off).
    pub obs: ObsOptions,
    /// Input validation and degraded-mode handling (on by default; clean
    /// inputs are unaffected byte for byte).
    pub validation: ValidationOptions,
    /// Admission control / load shedding (off by default; zero cost and
    /// zero behaviour change when off).
    pub admission: AdmissionOptions,
    /// Learned re-ranking of the top-K output (off by default; the paper
    /// scorer alone, byte-identical to the pre-rerank engine).
    pub rerank: RerankOptions,
    /// Per-query explain/audit capture (off by default; zero overhead and
    /// byte-identical outputs when off).
    pub explain: ExplainOptions,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: ExecMode::default(),
            pair_parallel_min_pairs: 8,
            sp_cache_capacity: 8192,
            candidate_memo: true,
            batch_parallel: true,
            obs: ObsOptions::default(),
            validation: ValidationOptions::default(),
            admission: AdmissionOptions::default(),
            rerank: RerankOptions::default(),
            explain: ExplainOptions::default(),
        }
    }
}

impl EngineConfig {
    /// A configuration that mirrors `Hris` exactly: one thread, no caches.
    /// Useful as the baseline in determinism and throughput comparisons.
    #[must_use]
    pub fn sequential() -> Self {
        EngineConfig {
            mode: ExecMode::Sequential,
            pair_parallel_min_pairs: 8,
            sp_cache_capacity: 0,
            candidate_memo: false,
            batch_parallel: false,
            obs: ObsOptions::default(),
            validation: ValidationOptions::default(),
            admission: AdmissionOptions::default(),
            rerank: RerankOptions::default(),
            explain: ExplainOptions::default(),
        }
    }

    /// A builder over the default configuration, with validation at
    /// [`EngineConfigBuilder::build`]. This is the preferred way to
    /// construct a non-default configuration.
    #[must_use]
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }

    /// The default configuration with input validation switched off
    /// (trust-the-caller mode; the pre-robustness contract).
    #[must_use]
    pub fn unvalidated() -> Self {
        EngineConfig {
            validation: ValidationOptions {
                enabled: false,
                ..ValidationOptions::default()
            },
            ..EngineConfig::default()
        }
    }
}

/// Why [`EngineConfigBuilder::build`] refused a configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `sp_cache_capacity(0)` was requested. A zero-capacity cache is a
    /// disabled cache; say so explicitly with
    /// [`EngineConfigBuilder::without_sp_cache`].
    ZeroSpCacheCapacity,
    /// The slow-query threshold must be a positive, finite number of
    /// seconds; the offending value is carried along.
    NonPositiveSlowQueryThreshold(f64),
    /// The ingest staleness bound must be a positive, finite number of
    /// seconds; the offending value is carried along.
    NonPositiveStalenessBound(f64),
    /// Admission control was enabled with `max_inflight == 0` — a gate
    /// nobody can enter would shed every request.
    ZeroAdmissionSlots,
    /// Re-ranking was enabled without a model to rank with.
    RerankWithoutModel,
    /// Explain was enabled with `audit_capacity == 0` — a ring that keeps
    /// nothing would silently drop every audit.
    ZeroAuditCapacity,
    /// The supplied re-ranking model is structurally invalid: wrong
    /// dimensions, non-finite parameters, or non-positive scales.
    InvalidRerankModel,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroSpCacheCapacity => f.write_str(
                "sp_cache_capacity must be > 0 (use without_sp_cache() to disable the cache)",
            ),
            ConfigError::NonPositiveSlowQueryThreshold(v) => write!(
                f,
                "slow_query_threshold_s must be positive and finite, got {v}"
            ),
            ConfigError::NonPositiveStalenessBound(v) => {
                write!(f, "staleness_bound_s must be positive and finite, got {v}")
            }
            ConfigError::ZeroAdmissionSlots => {
                f.write_str("admission control needs max_inflight >= 1")
            }
            ConfigError::RerankWithoutModel => {
                f.write_str("re-ranking needs a model (pass one to rerank())")
            }
            ConfigError::ZeroAuditCapacity => {
                f.write_str("explain needs audit_capacity >= 1 to retain any audit")
            }
            ConfigError::InvalidRerankModel => f.write_str(
                "re-ranking model is invalid: expect NUM_FEATURES weights/means/scales, \
                 all finite, scales positive",
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`EngineConfig`], created by
/// [`EngineConfig::builder`]. Starts from the default configuration;
/// every setter is chainable and [`EngineConfigBuilder::build`] rejects
/// nonsensical combinations instead of silently misbehaving at runtime.
///
/// ```
/// use hris::params::EngineConfig;
///
/// let cfg = EngineConfig::builder()
///     .observability(true)
///     .sp_cache_capacity(4096)
///     .slow_query_threshold_s(0.5)
///     .build()
///     .expect("valid configuration");
/// assert!(cfg.obs.enabled);
///
/// assert!(EngineConfig::builder().sp_cache_capacity(0).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngineConfigBuilder {
    cfg: EngineConfig,
    /// Capacity the caller set explicitly (validated at build; `None` keeps
    /// whatever `cfg.sp_cache_capacity` holds).
    explicit_sp_capacity: Option<usize>,
}

impl EngineConfigBuilder {
    /// Per-query pair scheduling.
    #[must_use]
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Minimum pair count before [`ExecMode::PairParallel`] fans out
    /// (shorter queries run sequentially; `0` always fans out).
    #[must_use]
    pub fn pair_parallel_min_pairs(mut self, min_pairs: usize) -> Self {
        self.cfg.pair_parallel_min_pairs = min_pairs;
        self
    }

    /// Entry bound of the shared shortest-path fallback cache. Zero is
    /// rejected at build time — disable the cache with
    /// [`EngineConfigBuilder::without_sp_cache`] instead.
    #[must_use]
    pub fn sp_cache_capacity(mut self, capacity: usize) -> Self {
        self.explicit_sp_capacity = Some(capacity);
        self.cfg.sp_cache_capacity = capacity;
        self
    }

    /// Disables the shortest-path fallback cache.
    #[must_use]
    pub fn without_sp_cache(mut self) -> Self {
        self.explicit_sp_capacity = None;
        self.cfg.sp_cache_capacity = 0;
        self
    }

    /// Enables/disables the per-position candidate memo.
    #[must_use]
    pub fn candidate_memo(mut self, on: bool) -> Self {
        self.cfg.candidate_memo = on;
        self
    }

    /// Enables/disables batch fan-out across the thread pool.
    #[must_use]
    pub fn batch_parallel(mut self, on: bool) -> Self {
        self.cfg.batch_parallel = on;
        self
    }

    /// Master switch for engine instrumentation.
    #[must_use]
    pub fn observability(mut self, on: bool) -> Self {
        self.cfg.obs.enabled = on;
        self
    }

    /// How many per-query trace records to retain (`0` keeps aggregate
    /// metrics but disables tracing).
    #[must_use]
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.cfg.obs.trace_capacity = capacity;
        self
    }

    /// Wall-time threshold (seconds) above which a query is flagged slow.
    /// Must be positive and finite; validated at build time.
    #[must_use]
    pub fn slow_query_threshold_s(mut self, seconds: f64) -> Self {
        self.cfg.obs.slow_query_threshold_s = seconds;
        self
    }

    /// Span-tree sampling period: one query in `every` captures a live
    /// span tree (`0` disables live capture; slow queries always get a
    /// synthesized tree).
    #[must_use]
    pub fn span_sampling(mut self, every: u64) -> Self {
        self.cfg.obs.span_sample_every = every;
        self
    }

    /// `/healthz` ingest staleness bound in seconds. Must be positive and
    /// finite; validated at build time.
    #[must_use]
    pub fn staleness_bound_s(mut self, seconds: f64) -> Self {
        self.cfg.obs.staleness_bound_s = seconds;
        self
    }

    /// Master switch for input validation / graceful degradation.
    #[must_use]
    pub fn validation(mut self, on: bool) -> Self {
        self.cfg.validation.enabled = on;
        self
    }

    /// On the repair path, whether to retry empty pairs with TGI/NNI forced
    /// before the shortest-path fallback.
    #[must_use]
    pub fn algorithm_fallback(mut self, on: bool) -> Self {
        self.cfg.validation.algorithm_fallback = on;
        self
    }

    /// Magnitude limits separating "far away" from "corrupt" input.
    #[must_use]
    pub fn sanitize_limits(mut self, limits: SanitizeLimits) -> Self {
        self.cfg.validation.limits = limits;
        self
    }

    /// Enables admission control with the given execution-slot and
    /// waiting-room bounds. `max_inflight` must be ≥ 1 (validated at
    /// build time); `max_queued` of 0 sheds the moment all slots are
    /// busy.
    #[must_use]
    pub fn admission(mut self, max_inflight: usize, max_queued: usize) -> Self {
        self.cfg.admission = AdmissionOptions {
            enabled: true,
            max_inflight,
            max_queued,
        };
        self
    }

    /// Disables admission control (the default: never shed).
    #[must_use]
    pub fn without_admission(mut self) -> Self {
        self.cfg.admission.enabled = false;
        self
    }

    /// Enables learned re-ranking of the top-K output with the given
    /// model. The model's shape and finiteness are validated at build
    /// time.
    #[must_use]
    pub fn rerank(mut self, model: crate::scoring::RerankModel) -> Self {
        self.cfg.rerank = RerankOptions {
            enabled: true,
            model: Some(model),
        };
        self
    }

    /// Disables learned re-ranking (the default: paper scoring alone).
    #[must_use]
    pub fn without_rerank(mut self) -> Self {
        self.cfg.rerank.enabled = false;
        self
    }

    /// Enables per-query explain/audit capture. `audit_capacity` must be
    /// ≥ 1 (validated at build time).
    #[must_use]
    pub fn explain(mut self, audit_capacity: usize) -> Self {
        self.cfg.explain.enabled = true;
        self.cfg.explain.audit_capacity = audit_capacity;
        self
    }

    /// How many returned routes get a full per-route explanation in each
    /// audit.
    #[must_use]
    pub fn explain_top_k(mut self, routes: usize) -> Self {
        self.cfg.explain.top_k_routes = routes;
        self
    }

    /// Disables explain/audit capture (the default: no audits, zero
    /// per-query overhead).
    #[must_use]
    pub fn without_explain(mut self) -> Self {
        self.cfg.explain.enabled = false;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    /// [`ConfigError::ZeroSpCacheCapacity`] when an explicit capacity of 0
    /// was requested; [`ConfigError::NonPositiveSlowQueryThreshold`] when
    /// the slow-query threshold is zero, negative, or non-finite.
    pub fn build(self) -> Result<EngineConfig, ConfigError> {
        if self.explicit_sp_capacity == Some(0) {
            return Err(ConfigError::ZeroSpCacheCapacity);
        }
        let threshold = self.cfg.obs.slow_query_threshold_s;
        if !(threshold.is_finite() && threshold > 0.0) {
            return Err(ConfigError::NonPositiveSlowQueryThreshold(threshold));
        }
        let staleness = self.cfg.obs.staleness_bound_s;
        if !(staleness.is_finite() && staleness > 0.0) {
            return Err(ConfigError::NonPositiveStalenessBound(staleness));
        }
        if self.cfg.admission.enabled && self.cfg.admission.max_inflight == 0 {
            return Err(ConfigError::ZeroAdmissionSlots);
        }
        if self.cfg.rerank.enabled {
            match &self.cfg.rerank.model {
                None => return Err(ConfigError::RerankWithoutModel),
                Some(model) if !model.is_valid() => return Err(ConfigError::InvalidRerankModel),
                Some(_) => {}
            }
        }
        if self.cfg.explain.enabled && self.cfg.explain.audit_capacity == 0 {
            return Err(ConfigError::ZeroAuditCapacity);
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_ii() {
        let p = HrisParams::default();
        assert_eq!(p.phi_m, 500.0);
        assert_eq!(p.tau_per_km2, 200.0);
        assert_eq!(p.lambda, 4);
        assert_eq!(p.k1, 5);
        assert_eq!(p.k2, 4);
        assert_eq!(p.alpha_m, 500.0);
        assert_eq!(p.beta, 1.5);
    }

    #[test]
    fn builder_accepts_valid_configurations() {
        let cfg = EngineConfig::builder()
            .mode(ExecMode::Sequential)
            .sp_cache_capacity(1024)
            .candidate_memo(false)
            .batch_parallel(false)
            .observability(true)
            .trace_capacity(16)
            .slow_query_threshold_s(0.25)
            .span_sampling(4)
            .staleness_bound_s(30.0)
            .validation(true)
            .algorithm_fallback(false)
            .build()
            .expect("valid configuration");
        assert_eq!(cfg.mode, ExecMode::Sequential);
        assert_eq!(cfg.sp_cache_capacity, 1024);
        assert!(!cfg.candidate_memo);
        assert!(!cfg.batch_parallel);
        assert!(cfg.obs.enabled);
        assert_eq!(cfg.obs.trace_capacity, 16);
        assert_eq!(cfg.obs.slow_query_threshold_s, 0.25);
        assert_eq!(cfg.obs.span_sample_every, 4);
        assert_eq!(cfg.obs.staleness_bound_s, 30.0);
        assert!(!cfg.validation.algorithm_fallback);
        // The untouched builder yields exactly the default configuration.
        let built = EngineConfig::builder().build().unwrap();
        assert_eq!(
            serde_json::to_string(&built).unwrap(),
            serde_json::to_string(&EngineConfig::default()).unwrap()
        );
    }

    #[test]
    fn builder_rejects_zero_cache_capacity_but_allows_disable() {
        assert_eq!(
            EngineConfig::builder()
                .sp_cache_capacity(0)
                .build()
                .expect_err("zero capacity must be rejected"),
            ConfigError::ZeroSpCacheCapacity
        );
        let cfg = EngineConfig::builder().without_sp_cache().build().unwrap();
        assert_eq!(cfg.sp_cache_capacity, 0);
        // Setting a bad capacity then disabling is fine — the disable wins.
        let cfg = EngineConfig::builder()
            .sp_cache_capacity(0)
            .without_sp_cache()
            .build()
            .unwrap();
        assert_eq!(cfg.sp_cache_capacity, 0);
    }

    #[test]
    fn builder_rejects_bad_slow_query_threshold() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = EngineConfig::builder()
                .slow_query_threshold_s(bad)
                .build()
                .expect_err("threshold must be rejected");
            assert!(matches!(err, ConfigError::NonPositiveSlowQueryThreshold(_)));
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn builder_rejects_bad_staleness_bound() {
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let err = EngineConfig::builder()
                .staleness_bound_s(bad)
                .build()
                .expect_err("staleness bound must be rejected");
            assert!(matches!(err, ConfigError::NonPositiveStalenessBound(_)));
            assert!(!err.to_string().is_empty());
        }
        // Span sampling accepts any period, 0 meaning "live capture off".
        let cfg = EngineConfig::builder().span_sampling(0).build().unwrap();
        assert_eq!(cfg.obs.span_sample_every, 0);
    }

    #[test]
    fn builder_validates_rerank_model() {
        use crate::scoring::RerankModel;
        let cfg = EngineConfig::builder()
            .rerank(RerankModel::zeroed())
            .build()
            .expect("zeroed model is structurally valid");
        assert!(cfg.rerank.enabled);
        assert!(cfg.rerank.model.is_some());

        let mut bad = RerankModel::zeroed();
        bad.weights[0] = f64::NAN;
        let err = EngineConfig::builder()
            .rerank(bad)
            .build()
            .expect_err("non-finite weights must be rejected");
        assert_eq!(err, ConfigError::InvalidRerankModel);
        assert!(!err.to_string().is_empty());

        let mut short = RerankModel::zeroed();
        short.weights.pop();
        assert_eq!(
            EngineConfig::builder().rerank(short).build().unwrap_err(),
            ConfigError::InvalidRerankModel
        );

        // Enabling then disabling wins, like without_sp_cache().
        let mut zero_scale = RerankModel::zeroed();
        zero_scale.scales[0] = 0.0;
        let cfg = EngineConfig::builder()
            .rerank(zero_scale)
            .without_rerank()
            .build()
            .expect("disabled re-ranking skips model validation");
        assert!(!cfg.rerank.enabled);
    }

    #[test]
    fn builder_validates_explain_options() {
        let cfg = EngineConfig::builder()
            .explain(64)
            .explain_top_k(5)
            .build()
            .expect("valid explain configuration");
        assert!(cfg.explain.enabled);
        assert_eq!(cfg.explain.audit_capacity, 64);
        assert_eq!(cfg.explain.top_k_routes, 5);
        assert_eq!(
            EngineConfig::builder().explain(0).build().unwrap_err(),
            ConfigError::ZeroAuditCapacity
        );
        assert!(!ConfigError::ZeroAuditCapacity.to_string().is_empty());
        let cfg = EngineConfig::builder()
            .explain(0)
            .without_explain()
            .build()
            .expect("disabled explain skips capacity validation");
        assert!(!cfg.explain.enabled);
    }

    #[test]
    fn serde_roundtrip() {
        let p = HrisParams {
            k1: 9,
            local_algorithm: LocalAlgorithm::Tgi,
            ..HrisParams::default()
        };
        let json = serde_json::to_string(&p).unwrap();
        let q: HrisParams = serde_json::from_str(&json).unwrap();
        assert_eq!(q.k1, 9);
        assert_eq!(q.local_algorithm, LocalAlgorithm::Tgi);
    }
}
