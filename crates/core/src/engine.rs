//! Parallel batch query engine with shared candidate / shortest-path caches.
//!
//! [`Hris`] answers one query on one thread. The [`QueryEngine`] wraps a
//! `Hris` and serves the same three-phase pipeline as a throughput-oriented
//! front end:
//!
//! * **Pair parallelism** — phases 1–2 of a query (reference search + local
//!   inference per consecutive point pair) are independent per pair; the
//!   engine fans them out on the thread pool and hands the results to K-GRI
//!   in query order.
//! * **Batch fan-out** — [`QueryEngine::infer_batch`] spreads whole queries
//!   across the pool (each query's pairs then run sequentially, so the pool
//!   is never oversubscribed by nested fan-out).
//! * **Shared caches** — a bounded, sharded LRU for the shortest-path
//!   fallback ([`SpCache`], keyed `(from, to, cost model)`) and a memo for
//!   per-point candidate edges (keyed by the *exact bit pattern* of the
//!   position), both shared by all pairs and all queries served by the
//!   engine.
//!
//! The load-bearing invariant: **scheduling and caching never change any
//! result.** Pair workers only read shared state, caches are keyed exactly
//! (no tolerance collisions), and cached values are stored verbatim — so
//! sequential, pair-parallel and batch execution return byte-identical
//! routes and scores. `tests/engine_determinism.rs` pins this down.

use crate::global::{k_gri_with, GlobalRoute};
use crate::local::{LocalInferenceResult, LocalStats};
use crate::params::{EngineConfig, ExecMode};
use crate::pipeline::{degenerate_local, infer_pair, DegenerateQuery, Hris, ScoredRoute};
use hris_roadnet::network::CandidateEdge;
use hris_roadnet::shortest::{route_between_segments, route_between_segments_cached, SpCache};
use hris_roadnet::{CostModel, Route, SegmentId};
use hris_traj::Trajectory;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Exact-position key: the bit patterns of a point's coordinates. Two query
/// points share a memo entry only when they are bit-identical, so the memo
/// cannot perturb results.
type CandKey = (u64, u64);

/// Hit/miss counters of the engine's two caches.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineCacheStats {
    /// Shortest-path fallback lookups answered from the cache.
    pub sp_hits: u64,
    /// Shortest-path fallback lookups that ran a real search.
    pub sp_misses: u64,
    /// Candidate-edge lookups answered from the memo.
    pub candidate_hits: u64,
    /// Candidate-edge lookups computed fresh.
    pub candidate_misses: u64,
}

/// Throughput-oriented front end over a [`Hris`] instance.
///
/// Cheap to construct; holds only cache state. All methods take `&self` and
/// the engine is `Sync`, so one engine may serve many threads.
pub struct QueryEngine<'a> {
    hris: &'a Hris<'a>,
    cfg: EngineConfig,
    sp_cache: Option<SpCache>,
    cand_memo: Option<RwLock<HashMap<CandKey, Arc<Vec<CandidateEdge>>>>>,
    cand_hits: AtomicU64,
    cand_misses: AtomicU64,
}

impl<'a> QueryEngine<'a> {
    /// Engine with the default configuration (pair-parallel, both caches).
    #[must_use]
    pub fn new(hris: &'a Hris<'a>) -> Self {
        QueryEngine::with_config(hris, EngineConfig::default())
    }

    /// Engine with an explicit configuration.
    #[must_use]
    pub fn with_config(hris: &'a Hris<'a>, cfg: EngineConfig) -> Self {
        QueryEngine {
            hris,
            sp_cache: (cfg.sp_cache_capacity > 0).then(|| SpCache::new(cfg.sp_cache_capacity)),
            cand_memo: cfg.candidate_memo.then(|| RwLock::new(HashMap::new())),
            cfg,
            cand_hits: AtomicU64::new(0),
            cand_misses: AtomicU64::new(0),
        }
    }

    /// The wrapped system.
    #[must_use]
    pub fn hris(&self) -> &Hris<'a> {
        self.hris
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Current cache counters (cumulative since construction).
    #[must_use]
    pub fn cache_stats(&self) -> EngineCacheStats {
        EngineCacheStats {
            sp_hits: self.sp_cache.as_ref().map_or(0, SpCache::hits),
            sp_misses: self.sp_cache.as_ref().map_or(0, SpCache::misses),
            candidate_hits: self.cand_hits.load(Ordering::Relaxed),
            candidate_misses: self.cand_misses.load(Ordering::Relaxed),
        }
    }

    /// Top-`k` routes of one query (same contract as [`Hris::infer_routes`]).
    #[must_use]
    pub fn infer_routes(&self, query: &Trajectory, k: usize) -> Vec<ScoredRoute> {
        self.infer_routes_detailed(query, k)
            .0
            .into_iter()
            .map(|g| ScoredRoute {
                route: g.route,
                log_score: g.log_score,
            })
            .collect()
    }

    /// The most likely single route.
    #[must_use]
    pub fn infer_top1(&self, query: &Trajectory) -> Option<ScoredRoute> {
        self.infer_routes(query, 1).into_iter().next()
    }

    /// Full inference with per-pair instrumentation.
    #[must_use]
    pub fn infer_routes_detailed(
        &self,
        query: &Trajectory,
        k: usize,
    ) -> (Vec<GlobalRoute>, Vec<LocalStats>) {
        self.infer_detailed_mode(query, k, self.cfg.mode)
    }

    /// Top-`k` routes for every query of a batch, sharing both caches and —
    /// when `batch_parallel` is set — spreading queries across the pool.
    #[must_use]
    pub fn infer_batch(&self, queries: &[Trajectory], k: usize) -> Vec<Vec<ScoredRoute>> {
        self.infer_batch_detailed(queries, k)
            .into_iter()
            .map(|(globals, _)| {
                globals
                    .into_iter()
                    .map(|g| ScoredRoute {
                        route: g.route,
                        log_score: g.log_score,
                    })
                    .collect()
            })
            .collect()
    }

    /// [`QueryEngine::infer_batch`] with per-pair instrumentation, for the
    /// evaluation harness.
    #[must_use]
    pub fn infer_batch_detailed(
        &self,
        queries: &[Trajectory],
        k: usize,
    ) -> Vec<(Vec<GlobalRoute>, Vec<LocalStats>)> {
        if self.cfg.batch_parallel && queries.len() > 1 {
            // One level of fan-out only: queries go to the pool, each
            // query's pairs run sequentially inside their worker.
            queries
                .par_iter()
                .map(|q| self.infer_detailed_mode(q, k, ExecMode::Sequential))
                .collect()
        } else {
            queries
                .iter()
                .map(|q| self.infer_detailed_mode(q, k, self.cfg.mode))
                .collect()
        }
    }

    /// Phases 1–2 under the engine's scheduling and caches (phase 3 input).
    #[must_use]
    pub fn local_inference(&self, query: &Trajectory) -> Vec<LocalInferenceResult> {
        self.local_inference_mode(query, self.cfg.mode)
    }

    fn infer_detailed_mode(
        &self,
        query: &Trajectory,
        k: usize,
        mode: ExecMode,
    ) -> (Vec<GlobalRoute>, Vec<LocalStats>) {
        let params = self.hris.params();
        let locals = self.local_inference_mode(query, mode);
        let stats = locals.iter().map(|l| l.stats.clone()).collect();
        let globals = k_gri_with(
            self.hris.network(),
            &locals,
            k,
            params.entropy_floor,
            params.popularity_model,
        );
        (globals, stats)
    }

    fn local_inference_mode(
        &self,
        query: &Trajectory,
        mode: ExecMode,
    ) -> Vec<LocalInferenceResult> {
        let net = self.hris.network();
        match degenerate_local(net, query) {
            DegenerateQuery::Empty => return Vec::new(),
            DegenerateQuery::Single(result) => return vec![result],
            DegenerateQuery::No => {}
        }
        // Candidates once per point (shared by the two adjoining pairs),
        // through the cross-query memo when enabled.
        let cands: Vec<Arc<Vec<CandidateEdge>>> = query
            .points
            .iter()
            .map(|p| self.candidates(p.pos))
            .collect();
        let pair_indices: Vec<usize> = (0..query.len() - 1).collect();
        let work = |i: usize| {
            infer_pair(
                net,
                self.hris.archive(),
                self.hris.params(),
                query.points[i],
                query.points[i + 1],
                &cands[i],
                &cands[i + 1],
                &|a, b| self.sp_fallback(a, b),
            )
        };
        match mode {
            ExecMode::Sequential => pair_indices.into_iter().map(work).collect(),
            ExecMode::PairParallel => pair_indices.par_iter().map(|&i| work(i)).collect(),
        }
    }

    /// Candidate edges of a point, memoised by exact position.
    fn candidates(&self, p: hris_geo::Point) -> Arc<Vec<CandidateEdge>> {
        let Some(memo) = &self.cand_memo else {
            self.cand_misses.fetch_add(1, Ordering::Relaxed);
            return Arc::new(crate::pipeline::query_candidates(
                self.hris.network(),
                self.hris.params(),
                p,
            ));
        };
        let key: CandKey = (p.x.to_bits(), p.y.to_bits());
        if let Some(hit) = memo.read().expect("candidate memo").get(&key) {
            self.cand_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.cand_misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(crate::pipeline::query_candidates(
            self.hris.network(),
            self.hris.params(),
            p,
        ));
        // A racing writer may have inserted the same key meanwhile; both
        // computed the same value, so either entry is correct.
        memo.write()
            .expect("candidate memo")
            .entry(key)
            .or_insert_with(|| Arc::clone(&fresh));
        fresh
    }

    /// Shortest-path fallback, through the shared cache when enabled.
    fn sp_fallback(&self, a: SegmentId, b: SegmentId) -> Option<Route> {
        let net = self.hris.network();
        match &self.sp_cache {
            Some(cache) => route_between_segments_cached(net, a, b, CostModel::Distance, cache),
            None => route_between_segments(net, a, b, CostModel::Distance),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::HrisParams;
    use hris_roadnet::{generator, NetworkConfig};
    use hris_traj::{TrajId, TrajectoryArchive};

    fn sparse_setup() -> (hris_roadnet::RoadNetwork, Vec<Trajectory>) {
        // Empty archive → every pair takes the shortest-path fallback, so
        // the SP cache sees traffic deterministically.
        let net = generator::generate(&NetworkConfig::small(5));
        let mk = |id: u32, x0: f64| {
            Trajectory::new(
                TrajId(id),
                (0..4)
                    .map(|k| {
                        hris_traj::GpsPoint::new(
                            hris_geo::Point::new(x0 + k as f64 * 400.0, 120.0),
                            k as f64 * 120.0,
                        )
                    })
                    .collect(),
            )
        };
        let queries = vec![mk(0, 0.0), mk(1, 0.0), mk(2, 200.0)];
        (net, queries)
    }

    #[test]
    fn sp_cache_reused_across_batch_queries() {
        let (net, queries) = sparse_setup();
        let hris = Hris::new(&net, TrajectoryArchive::empty(), HrisParams::default());
        let engine = QueryEngine::new(&hris);
        let out = engine.infer_batch(&queries, 2);
        assert_eq!(out.len(), queries.len());
        let stats = engine.cache_stats();
        // Queries 0 and 1 are identical: the second one's fallbacks must all
        // be cache hits.
        assert!(stats.sp_hits > 0, "expected SP cache hits, got {stats:?}");
        assert!(
            stats.candidate_hits > 0,
            "expected memo hits, got {stats:?}"
        );
    }

    #[test]
    fn disabled_caches_report_zero() {
        let (net, queries) = sparse_setup();
        let hris = Hris::new(&net, TrajectoryArchive::empty(), HrisParams::default());
        let engine = QueryEngine::with_config(&hris, EngineConfig::sequential());
        let _ = engine.infer_batch(&queries, 2);
        let stats = engine.cache_stats();
        assert_eq!(stats.sp_hits, 0);
        assert_eq!(stats.candidate_hits, 0);
        assert!(stats.candidate_misses > 0);
    }

    #[test]
    fn degenerate_queries_match_hris() {
        let (net, _) = sparse_setup();
        let hris = Hris::new(&net, TrajectoryArchive::empty(), HrisParams::default());
        let engine = QueryEngine::new(&hris);

        let empty = Trajectory::new(TrajId(0), vec![]);
        assert!(engine.infer_routes(&empty, 3).is_empty());

        let single = Trajectory::new(
            TrajId(0),
            vec![hris_traj::GpsPoint::new(
                hris_geo::Point::new(80.0, 90.0),
                0.0,
            )],
        );
        let ours = engine.infer_routes(&single, 3);
        let theirs = hris.infer_routes(&single, 3);
        assert_eq!(ours.len(), theirs.len());
        assert_eq!(ours[0].route, theirs[0].route);
    }
}
