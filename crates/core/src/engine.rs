//! Parallel batch query engine with shared candidate / shortest-path caches.
//!
//! [`Hris`] answers one query on one thread. The [`QueryEngine`] wraps a
//! `Hris` and serves the same three-phase pipeline as a throughput-oriented
//! front end:
//!
//! * **Pair parallelism** — phases 1–2 of a query (reference search + local
//!   inference per consecutive point pair) are independent per pair; the
//!   engine fans them out on the thread pool and hands the results to K-GRI
//!   in query order.
//! * **Batch fan-out** — [`QueryEngine::infer_batch`] spreads whole queries
//!   across the pool (each query's pairs then run sequentially, so the pool
//!   is never oversubscribed by nested fan-out).
//! * **Shared caches** — a bounded, sharded LRU for the shortest-path
//!   fallback ([`SpCache`], keyed `(from, to, cost model)`) and a memo for
//!   per-point candidate edges (keyed by the *exact bit pattern* of the
//!   position), both shared by all pairs and all queries served by the
//!   engine.
//! * **Observability** — with [`ObsOptions::enabled`](crate::ObsOptions)
//!   the engine records per-phase wall time, queue depth, worker occupancy,
//!   cache hit/miss pairs, rolling-window latency quantiles and opt-in
//!   per-query [`TraceRecord`]s on an [`hris_obs`] registry ([`EngineObs`]);
//!   sampled queries additionally carry a structured span tree whose ids
//!   surface as histogram exemplars. Disabled (the default) the hot path
//!   performs no clock reads and no atomic updates beyond the cache
//!   counters that predate instrumentation.
//!
//! The load-bearing invariant: **scheduling, caching and instrumentation
//! never change any result.** Pair workers only read shared state, caches
//! are keyed exactly (no tolerance collisions), and cached values are stored
//! verbatim — so sequential, pair-parallel and batch execution return
//! byte-identical routes and scores, with or without metrics enabled.
//! `tests/engine_determinism.rs` and `tests/engine_observability.rs` pin
//! this down.

use crate::global::GlobalRoute;
use crate::local::{LocalInferenceResult, LocalStats};
use crate::params::{EngineConfig, ExecMode, HrisParams, ObsOptions};
use crate::pipeline::{
    degenerate_local, infer_pair, infer_pair_chain, DegenerateQuery, Hris, ScoredRoute,
};
use crate::audit::{QueryAudit, RouteExplanation};
use crate::scoring::{LearnedScorer, PaperScorer, RerankModel, RouteScorer, ScoringCtx};
use hris_obs::{
    clock, synthetic_tree, AuditRing, Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot,
    PairedCounter, SlidingHistogram, Span, SpanCollector, SpanGuard, SpanSampler, TraceRecord,
    TraceRing, DEFAULT_TIME_BOUNDS,
};
use hris_roadnet::network::CandidateEdge;
use hris_roadnet::shortest::SpCache;
use hris_roadnet::{CostModel, RoadNetwork, Route, SegmentId};
use hris_traj::{sanitize_points, PointRepairs, Trajectory, TrajectoryArchive};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Why the engine refused to answer a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The query had no observations at all.
    EmptyQuery,
    /// Sanitization removed every observation (all points were garbage).
    NoUsablePoints,
    /// Sharded serving only: every shard holding the query's data is
    /// unhealthy (corrupt archive or stale snapshot), and no healthy shard
    /// can stand in.
    ShardUnavailable,
    /// Admission control shed the query: every execution slot and the
    /// whole waiting room were occupied. The caller should back off and
    /// retry — the 429 of this API.
    Overloaded,
}

/// Per-query disposition of the engine's validation/degradation layer.
///
/// The ladder, from best to worst:
/// * [`QueryOutcome::Ok`] — the input satisfied the engine's contract and
///   took the normal pipeline unchanged (byte-identical to a validation-off
///   engine).
/// * [`QueryOutcome::Repaired`] — the input violated the contract but
///   sanitization fixed it (dropped garbage points, re-sorted timestamps,
///   removed duplicate records); the repaired query then answered normally.
/// * [`QueryOutcome::Degraded`] — repaired as above, *and* at least one
///   point pair needed the degradation chain (forced TGI → forced NNI →
///   shortest path) to produce a route. The answer is a best effort.
/// * [`QueryOutcome::Rejected`] — nothing usable remained; the result is
///   empty and [`RejectReason`] says why.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryOutcome {
    /// Valid input, normal pipeline.
    Ok,
    /// Input repaired, then answered through the normal pipeline.
    Repaired {
        /// What sanitization did.
        repairs: PointRepairs,
    },
    /// Input repaired and answered only via the fallback chain.
    Degraded {
        /// What sanitization did.
        repairs: PointRepairs,
        /// Point pairs that needed a fallback beyond the primary algorithm.
        pairs_fell_back: usize,
    },
    /// No answer; the result is empty.
    Rejected {
        /// Why the query could not be answered.
        reason: RejectReason,
    },
}

impl QueryOutcome {
    /// Stable lower-case label (metrics, reports).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            QueryOutcome::Ok => "ok",
            QueryOutcome::Repaired { .. } => "repaired",
            QueryOutcome::Degraded { .. } => "degraded",
            QueryOutcome::Rejected { .. } => "rejected",
        }
    }

    /// `true` for [`QueryOutcome::Ok`].
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, QueryOutcome::Ok)
    }
}

// The derive stand-in handles unit-only enums; QueryOutcome carries payloads,
// so its JSON form — a tagged object `{"outcome": <label>, ...payload}` — is
// written out by hand.
impl Serialize for QueryOutcome {
    fn to_json_value(&self) -> serde::Value {
        let mut obj = vec![(
            "outcome".to_string(),
            serde::Value::Str(self.label().to_string()),
        )];
        match self {
            QueryOutcome::Ok => {}
            QueryOutcome::Repaired { repairs } => {
                obj.push(("repairs".to_string(), repairs.to_json_value()));
            }
            QueryOutcome::Degraded {
                repairs,
                pairs_fell_back,
            } => {
                obj.push(("repairs".to_string(), repairs.to_json_value()));
                obj.push((
                    "pairs_fell_back".to_string(),
                    serde::Value::Int(*pairs_fell_back as i64),
                ));
            }
            QueryOutcome::Rejected { reason } => {
                obj.push(("reason".to_string(), reason.to_json_value()));
            }
        }
        serde::Value::Obj(obj)
    }
}

impl Deserialize for QueryOutcome {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let tag = v
            .get("outcome")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| serde::DeError::msg("QueryOutcome: missing `outcome` tag"))?;
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::DeError::msg(format!("QueryOutcome: missing `{name}`")))
        };
        match tag {
            "ok" => Ok(QueryOutcome::Ok),
            "repaired" => Ok(QueryOutcome::Repaired {
                repairs: PointRepairs::from_json_value(field("repairs")?)?,
            }),
            "degraded" => Ok(QueryOutcome::Degraded {
                repairs: PointRepairs::from_json_value(field("repairs")?)?,
                pairs_fell_back: usize::from_json_value(field("pairs_fell_back")?)?,
            }),
            "rejected" => Ok(QueryOutcome::Rejected {
                reason: RejectReason::from_json_value(field("reason")?)?,
            }),
            other => Err(serde::DeError::msg(format!(
                "QueryOutcome: unknown tag `{other}`"
            ))),
        }
    }
}

/// One query's answer plus its [`QueryOutcome`].
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Top-K global routes (empty when rejected or nothing was inferable).
    pub globals: Vec<GlobalRoute>,
    /// Per-pair local statistics.
    pub stats: Vec<LocalStats>,
    /// How the validation/degradation layer handled the query.
    pub outcome: QueryOutcome,
}

/// Exact-position key: the bit patterns of a point's coordinates. Two query
/// points share a memo entry only when they are bit-identical, so the memo
/// cannot perturb results.
type CandKey = (u64, u64);

/// Hit/miss counters of the engine's two caches.
///
/// # Consistency model
///
/// Each cache's `(hits, misses)` pair is read from **one** atomic load of a
/// packed [`PairedCounter`], so within a pair the numbers are mutually
/// consistent even while a batch is in flight: `sp_hits + sp_misses` is
/// exactly the number of shortest-path lookups issued before the snapshot,
/// and likewise for the candidate memo. Across the two pairs (and relative
/// to any registry metrics) no ordering is guaranteed — the two loads happen
/// at slightly different instants.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineCacheStats {
    /// Shortest-path fallback lookups answered from the cache.
    pub sp_hits: u64,
    /// Shortest-path fallback lookups that ran a real search.
    pub sp_misses: u64,
    /// Candidate-edge lookups answered from the memo.
    pub candidate_hits: u64,
    /// Candidate-edge lookups computed fresh.
    pub candidate_misses: u64,
}

/// Per-query cache outcome tally, shared by the pair workers of one traced
/// query (they may run on several threads under [`ExecMode::PairParallel`]).
#[derive(Default)]
pub(crate) struct CacheTally {
    sp_hits: AtomicU64,
    sp_misses: AtomicU64,
    cand_hits: AtomicU64,
    cand_misses: AtomicU64,
}

impl CacheTally {
    fn bump(cell: &AtomicU64) {
        cell.fetch_add(1, Ordering::Relaxed);
    }
}

/// Phases 1–2 of one query plus the numbers the instrumentation wants.
pub(crate) struct LocalRun {
    pub(crate) locals: Vec<LocalInferenceResult>,
    /// Candidate edges summed over all query points.
    candidates_total: usize,
    /// Wall seconds of the candidate-lookup loop (0 when untimed).
    candidates_s: f64,
    /// Wall seconds of the per-pair inference loop (0 when untimed).
    local_s: f64,
    /// Span ids of the candidates/local phase spans (0 when unsampled).
    candidates_span: u64,
    local_span: u64,
}

/// The span tree of one sampled query, plus the phase span ids the
/// histograms stamp as exemplars.
struct SpanCapture {
    root: u64,
    candidates: u64,
    local: u64,
    global: u64,
    refine: u64,
    spans: Vec<Span>,
}

/// Rolling-window latency state: one [`SlidingHistogram`] per phase plus
/// the end-to-end query time, all on 30-second epochs so 1m and 5m reads
/// merge 2 and 10 epochs respectively.
struct LatencyWindows {
    query: SlidingHistogram,
    candidates: SlidingHistogram,
    local: SlidingHistogram,
    global: SlidingHistogram,
    refine: SlidingHistogram,
}

impl LatencyWindows {
    /// 30 s × 11 slots = a 330 s horizon, comfortably covering the 5 m
    /// window even mid-epoch.
    fn new() -> Self {
        let mk = || SlidingHistogram::new(&DEFAULT_TIME_BOUNDS, 30.0, 11);
        LatencyWindows {
            query: mk(),
            candidates: mk(),
            local: mk(),
            global: mk(),
            refine: mk(),
        }
    }
}

/// The engine's live instrumentation: metric handles on a shared
/// [`MetricsRegistry`] plus the per-query trace ring.
///
/// All metric names are prefixed `hris_engine_` and form a stable contract
/// (see DESIGN.md §5d for the catalog). The registry may be shared with
/// other components — handles are registered get-or-create.
pub struct EngineObs {
    registry: Arc<MetricsRegistry>,
    queries: Counter,
    batches: Counter,
    slow_queries: Counter,
    traces_dropped: Counter,
    repaired: Counter,
    degraded: Counter,
    rejected: Counter,
    points_dropped: Counter,
    phase_candidates: Histogram,
    phase_local: Histogram,
    phase_global: Histogram,
    phase_refine: Histogram,
    query_seconds: Histogram,
    batch_seconds: Histogram,
    queue_depth: Gauge,
    workers_busy: Gauge,
    slo_good: Counter,
    slo_breach: Counter,
    shed: Counter,
    rerank_queries: Counter,
    rerank_routes: Counter,
    rerank_reordered: Counter,
    rerank_seconds: Histogram,
    traces: TraceRing,
    next_query_id: AtomicU64,
    slow_threshold_s: f64,
    span_sampler: SpanSampler,
    windows: LatencyWindows,
}

impl EngineObs {
    fn new(
        registry: Arc<MetricsRegistry>,
        opts: &ObsOptions,
        sp_pair: Option<PairedCounter>,
        cand_pair: PairedCounter,
    ) -> Self {
        let phase = |name: &str| {
            registry.histogram_with_labels(
                "hris_engine_phase_seconds",
                "Wall seconds per pipeline phase, per query.",
                &DEFAULT_TIME_BOUNDS,
                &[("phase", name)],
            )
        };
        // The cache pairs are registered even when a cache is disabled (a
        // fresh all-zero pair), so the exported metric set does not depend
        // on the cache configuration.
        let _ = registry.register_paired(
            "hris_engine_sp_cache",
            "Shortest-path fallback cache lookups.",
            sp_pair.unwrap_or_default(),
        );
        let _ = registry.register_paired(
            "hris_engine_candidate_memo",
            "Candidate-edge memo lookups.",
            cand_pair,
        );
        EngineObs {
            queries: registry.counter("hris_engine_queries_total", "Queries served."),
            batches: registry.counter("hris_engine_batches_total", "Batches served."),
            slow_queries: registry.counter(
                "hris_engine_slow_queries_total",
                "Queries slower than the configured slow-query threshold.",
            ),
            traces_dropped: registry.counter(
                "hris_engine_traces_dropped_total",
                "Trace records evicted from the ring buffer.",
            ),
            repaired: registry.counter(
                "hris_engine_repaired_total",
                "Queries whose input needed sanitization before answering.",
            ),
            degraded: registry.counter(
                "hris_engine_degraded_total",
                "Repaired queries that also needed the degradation chain.",
            ),
            rejected: registry.counter(
                "hris_engine_rejected_total",
                "Queries rejected because no usable input remained.",
            ),
            points_dropped: registry.counter(
                "hris_engine_points_dropped_total",
                "Query points discarded by input sanitization.",
            ),
            phase_candidates: phase("candidates"),
            phase_local: phase("local"),
            phase_global: phase("global"),
            phase_refine: phase("refine"),
            query_seconds: registry.histogram(
                "hris_engine_query_seconds",
                "End-to-end wall seconds per query.",
                &DEFAULT_TIME_BOUNDS,
            ),
            batch_seconds: registry.histogram(
                "hris_engine_batch_seconds",
                "Wall seconds per infer_batch call.",
                &DEFAULT_TIME_BOUNDS,
            ),
            queue_depth: registry.gauge(
                "hris_engine_queue_depth",
                "Queries of the current batch not yet picked up by a worker.",
            ),
            workers_busy: registry.gauge(
                "hris_engine_workers_busy",
                "Workers currently inside a query.",
            ),
            slo_good: registry.counter(
                "hris_engine_slo_good_total",
                "Queries answered within the slow-query SLO threshold.",
            ),
            slo_breach: registry.counter(
                "hris_engine_slo_breach_total",
                "Queries breaching the slow-query SLO threshold (burn counter).",
            ),
            shed: registry.counter(
                "hris_engine_shed_total",
                "Queries shed by admission control (waiting room full).",
            ),
            // Registered whether or not re-ranking is configured, so the
            // exported metric set does not depend on the rerank option.
            rerank_queries: registry.counter(
                "hris_rerank_queries_total",
                "Queries whose top-K output went through the learned re-ranker.",
            ),
            rerank_routes: registry.counter(
                "hris_rerank_routes_total",
                "Candidate global routes scored by the learned re-ranker.",
            ),
            rerank_reordered: registry.counter(
                "hris_rerank_reordered_total",
                "Re-ranked queries whose top-1 route changed from the paper order.",
            ),
            rerank_seconds: registry.histogram(
                "hris_rerank_seconds",
                "Wall seconds spent re-ranking per query (refine phase).",
                &DEFAULT_TIME_BOUNDS,
            ),
            traces: TraceRing::new(opts.trace_capacity),
            next_query_id: AtomicU64::new(0),
            slow_threshold_s: opts.slow_query_threshold_s,
            span_sampler: SpanSampler::new(opts.span_sample_every),
            windows: LatencyWindows::new(),
            registry,
        }
    }

    /// The registry all engine metrics live on.
    #[must_use]
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Convenience for `registry().snapshot()`.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The retained per-query traces, oldest first.
    #[must_use]
    pub fn traces(&self) -> Vec<TraceRecord> {
        self.traces.snapshot()
    }

    /// Removes and returns the retained traces, oldest first.
    #[must_use]
    pub fn drain_traces(&self) -> Vec<TraceRecord> {
        self.traces.drain()
    }

    /// How many traces the ring has evicted so far.
    #[must_use]
    pub fn dropped_traces(&self) -> u64 {
        self.traces.dropped()
    }

    /// The configured slow-query threshold, seconds.
    #[must_use]
    pub fn slow_query_threshold_s(&self) -> f64 {
        self.slow_threshold_s
    }

    /// A handle onto the live trace ring (clones share storage), for
    /// serving `/debug/traces` without copying on registration.
    #[must_use]
    pub fn trace_ring(&self) -> TraceRing {
        self.traces.clone()
    }

    /// Rolling-window latency summary as a JSON object: end-to-end rate and
    /// p50/p95/p99 over the last 1 m and 5 m, plus per-phase 1 m p95s.
    /// Quantiles are `null` until the window has at least one sample.
    #[must_use]
    pub fn rolling_latency_json(&self) -> String {
        fn opt(v: Option<f64>) -> String {
            v.map_or_else(|| "null".to_string(), |x| format!("{x}"))
        }
        let win = |w: f64| {
            let q = &self.windows.query;
            format!(
                "{{\"rate_per_s\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                q.rate(w),
                opt(q.quantile(0.50, w)),
                opt(q.quantile(0.95, w)),
                opt(q.quantile(0.99, w)),
            )
        };
        let phase =
            |h: &SlidingHistogram| format!("{{\"p95_1m\":{}}}", opt(h.quantile(0.95, 60.0)));
        format!(
            "{{\"window_1m\":{},\"window_5m\":{},\"phases\":{{\"candidates\":{},\"local\":{},\"global\":{},\"refine\":{}}}}}",
            win(60.0),
            win(300.0),
            phase(&self.windows.candidates),
            phase(&self.windows.local),
            phase(&self.windows.global),
            phase(&self.windows.refine),
        )
    }

    fn tracing(&self) -> bool {
        self.traces.capacity() > 0
    }

    /// Whether this query should carry a live span tree. False whenever
    /// sampling is disabled (`span_sample_every == 0`).
    fn sample_spans(&self) -> bool {
        self.span_sampler.sample()
    }

    /// Records one finished query: aggregate metrics always, a trace record
    /// when tracing is on. A sampled query's span capture stamps the phase
    /// histograms with exemplar span ids and rides into the trace record; a
    /// *slow* unsampled query gets a synthetic tree rebuilt from the phase
    /// timings already measured (zero extra clock reads), so every slow
    /// trace carries a complete causal tree.
    /// Returns the query id it assigned when a trace record was pushed
    /// (0 when tracing is off), so the caller can stamp the same id onto
    /// the query's audit record.
    #[allow(clippy::too_many_arguments)]
    fn record_query(
        &self,
        query: &Trajectory,
        run: &LocalRun,
        global_s: f64,
        refine_s: f64,
        total_s: f64,
        globals: &[GlobalRoute],
        tally: Option<&CacheTally>,
        capture: Option<SpanCapture>,
        trace_id: u64,
    ) -> u64 {
        self.queries.inc();
        match &capture {
            Some(cap) => {
                self.phase_candidates
                    .observe_with_exemplar(run.candidates_s, cap.candidates);
                self.phase_local
                    .observe_with_exemplar(run.local_s, cap.local);
                self.phase_global
                    .observe_with_exemplar(global_s, cap.global);
                self.phase_refine
                    .observe_with_exemplar(refine_s, cap.refine);
                self.query_seconds.observe_with_exemplar(total_s, cap.root);
            }
            None => {
                self.phase_candidates.observe(run.candidates_s);
                self.phase_local.observe(run.local_s);
                self.phase_global.observe(global_s);
                self.phase_refine.observe(refine_s);
                self.query_seconds.observe(total_s);
            }
        }
        self.windows.query.observe(total_s);
        self.windows.candidates.observe(run.candidates_s);
        self.windows.local.observe(run.local_s);
        self.windows.global.observe(global_s);
        self.windows.refine.observe(refine_s);
        let slow = total_s > self.slow_threshold_s;
        if slow {
            self.slow_queries.inc();
            self.slo_breach.inc();
        } else {
            self.slo_good.inc();
        }
        let Some(tally) = tally else { return 0 };
        let (root_span, spans) = match capture {
            Some(cap) => (cap.root, cap.spans),
            None if slow => synthetic_tree(
                "query",
                total_s,
                &[
                    ("candidates", run.candidates_s),
                    ("local", run.local_s),
                    ("global", global_s),
                    ("refine", refine_s),
                ],
            ),
            None => (0, Vec::new()),
        };
        let query_id = self.next_query_id.fetch_add(1, Ordering::Relaxed);
        let rec = TraceRecord {
            trace_id,
            query_id,
            points: query.len(),
            pairs: query.len().saturating_sub(1),
            candidates: run.candidates_total,
            routes: globals.len(),
            top_log_score: globals.first().map(|g| g.log_score),
            candidates_s: run.candidates_s,
            local_s: run.local_s,
            global_s,
            refine_s,
            total_s,
            sp_hits: tally.sp_hits.load(Ordering::Relaxed),
            sp_misses: tally.sp_misses.load(Ordering::Relaxed),
            cand_hits: tally.cand_hits.load(Ordering::Relaxed),
            cand_misses: tally.cand_misses.load(Ordering::Relaxed),
            slow,
            root_span,
            spans,
        };
        if self.traces.push(rec) {
            self.traces_dropped.inc();
        }
        query_id
    }

    /// Records a non-clean [`QueryOutcome`]. Clean queries are counted by
    /// [`EngineObs::record_query`] on the normal pipeline path; the repair
    /// and reject paths bypass that path, so this bumps `queries` for them.
    fn record_outcome(&self, outcome: &QueryOutcome) {
        match outcome {
            QueryOutcome::Ok => {}
            QueryOutcome::Repaired { repairs } => {
                self.queries.inc();
                self.repaired.inc();
                self.points_dropped.add(repairs.points_dropped() as u64);
            }
            QueryOutcome::Degraded { repairs, .. } => {
                self.queries.inc();
                self.repaired.inc();
                self.degraded.inc();
                self.points_dropped.add(repairs.points_dropped() as u64);
            }
            QueryOutcome::Rejected { .. } => {
                self.queries.inc();
                self.rejected.inc();
            }
        }
    }

    /// Records an admission-control shed. A shed query is a served-badly
    /// query, not an invisible one: it counts as a query, a rejection,
    /// an SLO breach (burn), and a shed. The SLO partition stays exact —
    /// every counted query lands in exactly one of `slo_good_total` /
    /// `slo_breach_total`.
    pub(crate) fn record_shed(&self) {
        self.queries.inc();
        self.rejected.inc();
        self.slo_breach.inc();
        self.shed.inc();
    }
}

/// The immutable data one query is answered against: road network,
/// archive and parameters. `Copy`, so pair workers capture it by value.
///
/// The borrowed [`QueryEngine`] builds one from its [`Hris`]; the owned
/// [`EngineHandle`](crate::handle::EngineHandle) builds one per query from
/// whichever [`ArchiveSnapshot`](hris_traj::ArchiveSnapshot) epoch it is on.
#[derive(Clone, Copy)]
pub(crate) struct EngineCtx<'e> {
    pub(crate) net: &'e RoadNetwork,
    pub(crate) archive: &'e TrajectoryArchive,
    pub(crate) params: &'e HrisParams,
}

/// The engine's cache, configuration and instrumentation state, shared by
/// the borrowed [`QueryEngine`] and the owned
/// [`EngineHandle`](crate::handle::EngineHandle) front ends.
///
/// Every inference method takes an [`EngineCtx`] naming the data to serve
/// against instead of borrowing it at construction, which is what lets the
/// handle re-point at a new archive epoch without rebuilding its caches'
/// hit/miss history.
pub(crate) struct EngineCore {
    cfg: EngineConfig,
    sp_cache: Option<SpCache>,
    cand_memo: Option<RwLock<HashMap<CandKey, Arc<Vec<CandidateEdge>>>>>,
    cand_lookups: PairedCounter,
    obs: Option<EngineObs>,
    /// The explain/audit ring, present iff `cfg.explain.enabled` — the
    /// `Option` is the zero-overhead gate for the disabled path.
    audits: Option<AuditRing>,
}

impl EngineCore {
    pub(crate) fn build(cfg: EngineConfig, registry: Option<Arc<MetricsRegistry>>) -> Self {
        let sp_cache = (cfg.sp_cache_capacity > 0).then(|| SpCache::new(cfg.sp_cache_capacity));
        let cand_lookups = PairedCounter::new();
        let obs = registry.map(|r| {
            EngineObs::new(
                r,
                &cfg.obs,
                sp_cache.as_ref().map(SpCache::lookup_counters),
                cand_lookups.clone(),
            )
        });
        let audits = cfg
            .explain
            .enabled
            .then(|| AuditRing::new(cfg.explain.audit_capacity));
        EngineCore {
            sp_cache,
            cand_memo: cfg.candidate_memo.then(|| RwLock::new(HashMap::new())),
            cfg,
            cand_lookups,
            obs,
            audits,
        }
    }

    pub(crate) fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The re-ranking model to apply, if any. Enabled options without a
    /// model (only constructible by hand — the builder validates) behave
    /// as disabled rather than guessing.
    fn rerank_model(&self) -> Option<&RerankModel> {
        if self.cfg.rerank.enabled {
            self.cfg.rerank.model.as_ref()
        } else {
            None
        }
    }

    /// Phase 3 through the configured scorer: the paper's K-GRI DP, plus
    /// the learned re-rank of its top-K output when
    /// [`EngineConfig::rerank`] is enabled. With re-ranking off this is
    /// byte-identical to the legacy `k_gri_with` call it replaced.
    fn score_globals(
        &self,
        ctx: EngineCtx<'_>,
        locals: &[LocalInferenceResult],
        k: usize,
    ) -> Vec<GlobalRoute> {
        let paper = PaperScorer::from_params(ctx.params);
        let sctx = ScoringCtx::new(ctx.net, locals, k);
        match self.rerank_model() {
            None => paper.top_k(&sctx),
            Some(model) => LearnedScorer::new(paper, model).top_k(&sctx),
        }
    }

    /// Registers the network-level shortest-path oracle on the engine's
    /// registry: `hris_sp_oracle_{hits,misses}_total` (probes answered from
    /// precomputed state vs. probes that ran Dijkstra) and the one-off
    /// preprocessing cost as `hris_sp_oracle_preprocessing_micros`. No-op
    /// when observability is off — the oracle then stays lazily built.
    pub(crate) fn register_oracle_metrics(&self, net: &RoadNetwork) {
        let Some(obs) = &self.obs else { return };
        let oracle = net.sp_oracle();
        let _ = obs.registry().register_paired(
            "hris_sp_oracle",
            "Shortest-path oracle probes (hit = answered from precomputed state).",
            oracle.lookup_counters(),
        );
        obs.registry()
            .gauge(
                "hris_sp_oracle_preprocessing_micros",
                "One-off CSR/SCC/reachability preprocessing cost of the shortest-path oracle.",
            )
            .set((oracle.preprocessing_seconds() * 1e6) as i64);
    }

    pub(crate) fn observability(&self) -> Option<&EngineObs> {
        self.obs.as_ref()
    }

    /// The explain/audit ring, when explain is enabled.
    pub(crate) fn audits(&self) -> Option<&AuditRing> {
        self.audits.as_ref()
    }

    /// Mints a process-unique trace id when some identity consumer —
    /// per-query tracing or the explain layer — is switched on; 0 (the
    /// "untraced" id) otherwise, so the fully disabled path performs not
    /// even the atomic increment.
    pub(crate) fn mint_trace_id(&self) -> u64 {
        let tracing = self.obs.as_ref().is_some_and(EngineObs::tracing);
        if tracing || self.audits.is_some() {
            hris_obs::next_trace_id()
        } else {
            0
        }
    }

    /// The identity/counts preamble of one audit document. Candidate
    /// counts re-probe the per-position memo, so filling an audit does not
    /// perturb the inference it explains.
    fn base_audit(
        &self,
        ctx: EngineCtx<'_>,
        query: &Trajectory,
        trace_id: u64,
        query_id: u64,
        locals: &[LocalInferenceResult],
    ) -> QueryAudit {
        let mut audit = QueryAudit::new(trace_id, query_id);
        audit.points = query.len();
        audit.pairs = query.len().saturating_sub(1);
        audit.candidates_per_point = query
            .points
            .iter()
            .map(|p| self.candidates(ctx, p.pos, None).len())
            .collect();
        audit.local_routes_per_pair = locals.iter().map(|l| l.routes.len()).collect();
        audit.scorer = if self.rerank_model().is_some() {
            "learned"
        } else {
            "paper"
        }
        .to_string();
        audit
    }

    /// Explains the top returned routes (capped at
    /// `explain.top_k_routes`) into the audit: paper score components,
    /// feature vector, and — when re-ranking is configured — the model's
    /// score and per-feature attributions.
    fn explain_routes(
        &self,
        ctx: EngineCtx<'_>,
        locals: &[LocalInferenceResult],
        k: usize,
        globals: &[GlobalRoute],
        audit: &mut QueryAudit,
    ) {
        let sctx = ScoringCtx::new(ctx.net, locals, k);
        let rerank = self.rerank_model();
        audit.routes = globals
            .iter()
            .take(self.cfg.explain.top_k_routes)
            .enumerate()
            .map(|(rank, g)| {
                RouteExplanation::explain(
                    &sctx,
                    g,
                    rank,
                    ctx.params.entropy_floor,
                    ctx.params.popularity_model,
                    rerank,
                )
            })
            .collect();
    }

    /// Audits an admission-control shed (no inference ran, so the document
    /// is identity + the shed event).
    pub(crate) fn record_shed_audit(&self, points: usize, trace_id: u64) {
        let Some(ring) = &self.audits else { return };
        let mut audit = QueryAudit::new(trace_id, 0);
        audit.points = points;
        audit.pairs = points.saturating_sub(1);
        audit.outcome = "shed".to_string();
        audit.scorer = "none".to_string();
        audit.push_event("admission: waiting room full, query shed");
        let _ = ring.push(audit.into_record());
    }

    pub(crate) fn cache_stats(&self) -> EngineCacheStats {
        let (sp_hits, sp_misses) = self
            .sp_cache
            .as_ref()
            .map_or((0, 0), |c| c.lookup_counters().get());
        let (candidate_hits, candidate_misses) = self.cand_lookups.get();
        EngineCacheStats {
            sp_hits,
            sp_misses,
            candidate_hits,
            candidate_misses,
        }
    }

    /// Drops every cached entry from both caches, keeping their cumulative
    /// hit/miss counters. The owned handle calls this when it adopts a new
    /// archive epoch.
    ///
    /// Strictly speaking both caches are epoch-proof by construction — the
    /// shortest-path cache keys on `(segment, segment, cost model)` over the
    /// immutable road network and the candidate memo keys on exact query
    /// coordinates against that same network, so neither ever holds
    /// archive-derived data. Invalidating anyway keeps the contract simple
    /// ("a new epoch starts with cold caches") and future-proofs the day a
    /// cache does become archive-dependent.
    pub(crate) fn invalidate_caches(&self) {
        if let Some(cache) = &self.sp_cache {
            cache.clear();
        }
        if let Some(memo) = &self.cand_memo {
            memo.write().expect("candidate memo").clear();
        }
    }

    /// [`QueryEngine::infer_batch_detailed`] with the data named explicitly.
    pub(crate) fn infer_batch_detailed(
        &self,
        ctx: EngineCtx<'_>,
        queries: &[Trajectory],
        k: usize,
    ) -> Vec<QueryResult> {
        let batch_timer = self.obs.as_ref().map(|obs| {
            obs.batches.inc();
            obs.queue_depth.set(queries.len() as i64);
            clock::now()
        });
        let run_one = |q: &Trajectory, mode: ExecMode| {
            if let Some(obs) = &self.obs {
                obs.queue_depth.dec();
                obs.workers_busy.inc();
            }
            let out = self.infer_query_mode(ctx, q, k, mode);
            if let Some(obs) = &self.obs {
                obs.workers_busy.dec();
            }
            out
        };
        let result = if self.cfg.batch_parallel && queries.len() > 1 {
            // One level of fan-out only: queries go to the pool, each
            // query's pairs run sequentially inside their worker.
            queries
                .par_iter()
                .map(|q| run_one(q, ExecMode::Sequential))
                .collect()
        } else {
            queries.iter().map(|q| run_one(q, self.cfg.mode)).collect()
        };
        if let (Some(obs), Some(t0)) = (&self.obs, batch_timer) {
            obs.batch_seconds
                .observe(clock::now().duration_since(t0).as_secs_f64());
        }
        result
    }

    /// The validation screen. Clean queries (the overwhelming majority)
    /// take *exactly* the pre-validation code path — byte-identical results,
    /// pinned by `tests/engine_robustness.rs`. Dirty queries are repaired
    /// (sanitized, re-sorted, deduplicated) and answered through the
    /// degradation chain; unusable queries are rejected instead of panicking.
    pub(crate) fn infer_query_mode(
        &self,
        ctx: EngineCtx<'_>,
        query: &Trajectory,
        k: usize,
        mode: ExecMode,
    ) -> QueryResult {
        let trace_id = self.mint_trace_id();
        self.infer_query_traced(ctx, query, k, mode, trace_id)
    }

    /// [`EngineCore::infer_query_mode`] under a caller-minted trace id —
    /// the delegation seam of distributed tracing: a sharded router mints
    /// one id at its routing decision and threads it here, so the shard's
    /// trace and audit records join the router's stitched tree.
    pub(crate) fn infer_query_traced(
        &self,
        ctx: EngineCtx<'_>,
        query: &Trajectory,
        k: usize,
        mode: ExecMode,
        trace_id: u64,
    ) -> QueryResult {
        if !self.cfg.validation.enabled {
            let (globals, stats) = self.infer_detailed_mode(ctx, query, k, mode, trace_id);
            return QueryResult {
                globals,
                stats,
                outcome: QueryOutcome::Ok,
            };
        }
        if query.is_empty() {
            // Same observable behaviour as the unvalidated engine (empty
            // output), but reported as a rejection so callers can tell an
            // empty answer from an empty question.
            return self.reject(query, trace_id, RejectReason::EmptyQuery);
        }
        if self.query_is_valid(query) {
            let (globals, stats) = self.infer_detailed_mode(ctx, query, k, mode, trace_id);
            return QueryResult {
                globals,
                stats,
                outcome: QueryOutcome::Ok,
            };
        }
        let mut pts = query.points.clone();
        let repairs = sanitize_points(&mut pts, &self.cfg.validation.limits);
        if pts.is_empty() {
            return self.reject(query, trace_id, RejectReason::NoUsablePoints);
        }
        // Sanitization guarantees finite, ordered points, so the validating
        // constructor cannot panic here.
        let repaired = Trajectory::new(query.id, pts);
        let (globals, stats, pairs_fell_back, locals) =
            self.infer_repaired(ctx, &repaired, k, mode);
        let outcome = if pairs_fell_back > 0 {
            QueryOutcome::Degraded {
                repairs,
                pairs_fell_back,
            }
        } else {
            QueryOutcome::Repaired { repairs }
        };
        if let Some(obs) = &self.obs {
            obs.record_outcome(&outcome);
        }
        if let Some(ring) = &self.audits {
            let mut audit = self.base_audit(ctx, &repaired, trace_id, 0, &locals);
            audit.outcome = if pairs_fell_back > 0 {
                "degraded"
            } else {
                "repaired"
            }
            .to_string();
            audit.push_event(format!(
                "repair: sanitization dropped {} of {} points",
                repairs.points_dropped(),
                query.len()
            ));
            if pairs_fell_back > 0 {
                audit.push_event(format!(
                    "degraded: {pairs_fell_back} pairs fell back along the repair chain"
                ));
            }
            self.explain_routes(ctx, &locals, k, &globals, &mut audit);
            let _ = ring.push(audit.into_record());
        }
        QueryResult {
            globals,
            stats,
            outcome,
        }
    }

    fn reject(&self, query: &Trajectory, trace_id: u64, reason: RejectReason) -> QueryResult {
        let outcome = QueryOutcome::Rejected { reason };
        if let Some(obs) = &self.obs {
            obs.record_outcome(&outcome);
        }
        if let Some(ring) = &self.audits {
            let mut audit = QueryAudit::new(trace_id, 0);
            audit.points = query.len();
            audit.pairs = query.len().saturating_sub(1);
            audit.outcome = "rejected".to_string();
            audit.scorer = "none".to_string();
            audit.push_event(format!("rejected: {reason:?}"));
            let _ = ring.push(audit.into_record());
        }
        QueryResult {
            globals: Vec::new(),
            stats: Vec::new(),
            outcome,
        }
    }

    /// The engine's input contract: finite coordinates and timestamps,
    /// magnitudes within [`ValidationOptions::limits`], timestamps
    /// non-decreasing. Duplicate timestamps and large (but in-range) jumps
    /// are *valid* — they are data, not corruption.
    ///
    /// [`ValidationOptions::limits`]: crate::params::ValidationOptions
    fn query_is_valid(&self, query: &Trajectory) -> bool {
        let lim = &self.cfg.validation.limits;
        query.validate().is_ok()
            && query.points.iter().all(|p| {
                p.pos.x.abs() <= lim.max_abs_coord_m
                    && p.pos.y.abs() <= lim.max_abs_coord_m
                    && p.t.abs() <= lim.max_abs_time_s
            })
    }

    /// Phases 1–3 for a repaired query. Unlike the clean path this runs each
    /// pair through [`infer_pair_chain`] — primary algorithm, then (when
    /// [`ValidationOptions::algorithm_fallback`] is set) forced TGI and NNI,
    /// then the shortest-path fallback — and reports how many pairs needed a
    /// fallback.
    ///
    /// [`ValidationOptions::algorithm_fallback`]: crate::params::ValidationOptions
    fn infer_repaired(
        &self,
        ctx: EngineCtx<'_>,
        query: &Trajectory,
        k: usize,
        mode: ExecMode,
    ) -> (
        Vec<GlobalRoute>,
        Vec<LocalStats>,
        usize,
        Vec<LocalInferenceResult>,
    ) {
        let EngineCtx { net, params, .. } = ctx;
        // Locals ride back out so the explain layer can attribute route
        // scores without re-running inference.
        let finish = |locals: Vec<LocalInferenceResult>, fell_back: usize| {
            let stats = locals.iter().map(|l| l.stats.clone()).collect();
            let globals = self.score_globals(ctx, &locals, k);
            (globals, stats, fell_back, locals)
        };
        match degenerate_local(net, query) {
            DegenerateQuery::Empty => return finish(Vec::new(), 0),
            DegenerateQuery::Single(result) => return finish(vec![result], 0),
            DegenerateQuery::No => {}
        }
        let cands: Vec<Arc<Vec<CandidateEdge>>> = query
            .points
            .iter()
            .map(|p| self.candidates(ctx, p.pos, None))
            .collect();
        let pair_indices: Vec<usize> = (0..query.len() - 1).collect();
        let work = |i: usize| {
            infer_pair_chain(
                net,
                ctx.archive,
                params,
                query.points[i],
                query.points[i + 1],
                &cands[i],
                &cands[i + 1],
                &|a, b| self.sp_fallback(net, a, b, None),
                self.cfg.validation.algorithm_fallback,
            )
        };
        let results: Vec<(LocalInferenceResult, bool)> =
            match self.effective_mode(mode, pair_indices.len()) {
                ExecMode::Sequential => pair_indices.into_iter().map(work).collect(),
                ExecMode::PairParallel => pair_indices.par_iter().map(|&i| work(i)).collect(),
            };
        let fell_back = results.iter().filter(|(_, fb)| *fb).count();
        let locals = results.into_iter().map(|(l, _)| l).collect();
        finish(locals, fell_back)
    }

    fn infer_detailed_mode(
        &self,
        ctx: EngineCtx<'_>,
        query: &Trajectory,
        k: usize,
        mode: ExecMode,
        trace_id: u64,
    ) -> (Vec<GlobalRoute>, Vec<LocalStats>) {
        let params = ctx.params;
        let Some(obs) = &self.obs else {
            // Uninstrumented fast path: no clocks, no tallies, no spans.
            let run = self.local_inference_run(ctx, query, mode, None, false, None);
            let stats = run.locals.iter().map(|l| l.stats.clone()).collect();
            let globals = self.score_globals(ctx, &run.locals, k);
            if let Some(ring) = &self.audits {
                let mut audit = self.base_audit(ctx, query, trace_id, 0, &run.locals);
                audit.outcome = "served".to_string();
                self.explain_routes(ctx, &run.locals, k, &globals, &mut audit);
                let _ = ring.push(audit.into_record());
            }
            return (globals, stats);
        };

        // Span trees are sampled: most queries pay only the phase timers
        // below, a sampled query additionally opens RAII guards per phase.
        let collector = obs.sample_spans().then(SpanCollector::new);
        let mut root_guard = collector.as_ref().map(|c| c.root("query"));
        let root_id = root_guard.as_ref().map_or(0, SpanGuard::id);
        if let Some(g) = root_guard.as_mut() {
            g.attr("points", query.len());
            g.attr("pairs", query.len().saturating_sub(1));
        }
        let spanctx = collector.as_ref().map(|c| (c, root_id));

        let t_query = clock::now();
        let tally = obs.tracing().then(CacheTally::default);
        let run = self.local_inference_run(ctx, query, mode, tally.as_ref(), true, spanctx);

        let mut global_guard = spanctx.map(|(c, root)| c.child(root, "global"));
        let global_span_id = global_guard.as_ref().map_or(0, SpanGuard::id);
        let paper = PaperScorer::from_params(params);
        let sctx = ScoringCtx::new(ctx.net, &run.locals, k);
        let t_global = clock::now();
        let mut globals = paper.top_k(&sctx);
        let global_s = clock::now().duration_since(t_global).as_secs_f64();
        if let Some(g) = global_guard.as_mut() {
            g.attr("routes", globals.len());
        }
        let _ = global_guard.map(SpanGuard::finish);

        let mut refine_guard = spanctx.map(|(c, root)| c.child(root, "refine"));
        let refine_span_id = refine_guard.as_ref().map_or(0, SpanGuard::id);
        let t_refine = clock::now();
        // Learned re-ranking lives in the refine phase: the DP output is
        // the raw material, the model only permutes it.
        if let Some(model) = self.rerank_model() {
            let t_rerank = clock::now();
            let outcome = LearnedScorer::new(paper, model).rerank_in_place(&sctx, &mut globals);
            obs.rerank_seconds
                .observe(clock::now().duration_since(t_rerank).as_secs_f64());
            obs.rerank_queries.inc();
            obs.rerank_routes.add(outcome.rescored as u64);
            if outcome.top1_changed {
                obs.rerank_reordered.inc();
            }
            if let Some(g) = refine_guard.as_mut() {
                g.attr("reranked", outcome.rescored);
            }
        }
        let stats: Vec<LocalStats> = run.locals.iter().map(|l| l.stats.clone()).collect();
        let refine_s = clock::now().duration_since(t_refine).as_secs_f64();
        let _ = refine_guard.map(SpanGuard::finish);

        let total_s = clock::now().duration_since(t_query).as_secs_f64();
        let _ = root_guard.map(SpanGuard::finish);
        let capture = collector.map(|c| SpanCapture {
            root: root_id,
            candidates: run.candidates_span,
            local: run.local_span,
            global: global_span_id,
            refine: refine_span_id,
            spans: c.into_spans(),
        });
        let query_id = obs.record_query(
            query,
            &run,
            global_s,
            refine_s,
            total_s,
            &globals,
            tally.as_ref(),
            capture,
            trace_id,
        );
        if let Some(ring) = &self.audits {
            let mut audit = self.base_audit(ctx, query, trace_id, query_id, &run.locals);
            audit.outcome = "served".to_string();
            self.explain_routes(ctx, &run.locals, k, &globals, &mut audit);
            let _ = ring.push(audit.into_record());
        }
        (globals, stats)
    }

    /// Phases 1–2 with optional wall-clock timing (`timed`), optional
    /// per-query cache attribution (`tally`) and optional span capture
    /// (`spans` = collector + root span id). Untimed calls perform zero
    /// clock reads.
    pub(crate) fn local_inference_run(
        &self,
        ctx: EngineCtx<'_>,
        query: &Trajectory,
        mode: ExecMode,
        tally: Option<&CacheTally>,
        timed: bool,
        spans: Option<(&SpanCollector, u64)>,
    ) -> LocalRun {
        let net = ctx.net;
        match degenerate_local(net, query) {
            DegenerateQuery::Empty => {
                return LocalRun {
                    locals: Vec::new(),
                    candidates_total: 0,
                    candidates_s: 0.0,
                    local_s: 0.0,
                    candidates_span: 0,
                    local_span: 0,
                }
            }
            DegenerateQuery::Single(result) => {
                return LocalRun {
                    locals: vec![result],
                    candidates_total: 0,
                    candidates_s: 0.0,
                    local_s: 0.0,
                    candidates_span: 0,
                    local_span: 0,
                }
            }
            DegenerateQuery::No => {}
        }
        // Candidates once per point (shared by the two adjoining pairs),
        // through the cross-query memo when enabled.
        let mut cand_guard = spans.map(|(c, root)| c.child(root, "candidates"));
        let candidates_span = cand_guard.as_ref().map_or(0, SpanGuard::id);
        let t_cands = timed.then(clock::now);
        let cands: Vec<Arc<Vec<CandidateEdge>>> = query
            .points
            .iter()
            .map(|p| self.candidates(ctx, p.pos, tally))
            .collect();
        let candidates_s = t_cands.map_or(0.0, |t| clock::now().duration_since(t).as_secs_f64());
        let candidates_total = cands.iter().map(|c| c.len()).sum();
        if let Some(g) = cand_guard.as_mut() {
            g.attr("edges", candidates_total);
        }
        let _ = cand_guard.map(SpanGuard::finish);

        let local_guard = spans.map(|(c, root)| c.child(root, "local"));
        let local_span = local_guard.as_ref().map_or(0, SpanGuard::id);
        let pair_indices: Vec<usize> = (0..query.len() - 1).collect();
        let work = |i: usize| {
            // Per-pair child spans capture the local TGI/NNI inference for
            // each consecutive point pair; the guard's drop records it.
            let mut pair_guard = spans.map(|(c, _)| c.child(local_span, "pair"));
            if let Some(g) = pair_guard.as_mut() {
                g.attr("index", i);
            }
            infer_pair(
                net,
                ctx.archive,
                ctx.params,
                query.points[i],
                query.points[i + 1],
                &cands[i],
                &cands[i + 1],
                &|a, b| self.sp_fallback(net, a, b, tally),
            )
        };
        let t_local = timed.then(clock::now);
        let locals = match self.effective_mode(mode, pair_indices.len()) {
            ExecMode::Sequential => pair_indices.into_iter().map(work).collect(),
            ExecMode::PairParallel => pair_indices.par_iter().map(|&i| work(i)).collect(),
        };
        let local_s = t_local.map_or(0.0, |t| clock::now().duration_since(t).as_secs_f64());
        let _ = local_guard.map(SpanGuard::finish);
        LocalRun {
            locals,
            candidates_total,
            candidates_s,
            local_s,
            candidates_span,
            local_span,
        }
    }

    /// The scheduling mode actually used for a query with `pairs` point
    /// pairs: [`ExecMode::PairParallel`] degrades to sequential below the
    /// configured `pair_parallel_min_pairs` threshold, where fork/join
    /// overhead outweighs the per-pair work. Scheduling never changes
    /// results, so this is a pure throughput decision.
    fn effective_mode(&self, mode: ExecMode, pairs: usize) -> ExecMode {
        match mode {
            ExecMode::PairParallel if pairs < self.cfg.pair_parallel_min_pairs => {
                ExecMode::Sequential
            }
            m => m,
        }
    }

    /// Candidate edges of a point, memoised by exact position.
    fn candidates(
        &self,
        ctx: EngineCtx<'_>,
        p: hris_geo::Point,
        tally: Option<&CacheTally>,
    ) -> Arc<Vec<CandidateEdge>> {
        let Some(memo) = &self.cand_memo else {
            self.cand_lookups.miss();
            if let Some(t) = tally {
                CacheTally::bump(&t.cand_misses);
            }
            return Arc::new(crate::pipeline::query_candidates(ctx.net, ctx.params, p));
        };
        let key: CandKey = (p.x.to_bits(), p.y.to_bits());
        if let Some(hit) = memo.read().expect("candidate memo").get(&key) {
            self.cand_lookups.hit();
            if let Some(t) = tally {
                CacheTally::bump(&t.cand_hits);
            }
            return Arc::clone(hit);
        }
        self.cand_lookups.miss();
        if let Some(t) = tally {
            CacheTally::bump(&t.cand_misses);
        }
        let fresh = Arc::new(crate::pipeline::query_candidates(ctx.net, ctx.params, p));
        // A racing writer may have inserted the same key meanwhile; both
        // computed the same value, so either entry is correct.
        memo.write()
            .expect("candidate memo")
            .entry(key)
            .or_insert_with(|| Arc::clone(&fresh));
        fresh
    }

    /// Shortest-path fallback through the network's [`SpOracle`], with the
    /// per-pair [`SpCache`] demoted to the oracle-miss path: the oracle's
    /// precomputed state (reachability matrix, cached trees) answers first,
    /// the route cache is only consulted — and only filled — when the
    /// oracle would have to run Dijkstra. Inlined (rather than calling a
    /// shared helper) so a traced query can attribute the hit/miss to
    /// itself.
    fn sp_fallback(
        &self,
        net: &RoadNetwork,
        a: SegmentId,
        b: SegmentId,
        tally: Option<&CacheTally>,
    ) -> Option<Route> {
        let oracle = net.sp_oracle();
        if let Some(answer) = oracle.route_between_cached(a, b, CostModel::Distance) {
            return answer;
        }
        let Some(cache) = &self.sp_cache else {
            return oracle.route_between(a, b, CostModel::Distance);
        };
        let key = (a, b, CostModel::Distance);
        if let Some(cached) = cache.get(&key) {
            if let Some(t) = tally {
                CacheTally::bump(&t.sp_hits);
            }
            return cached;
        }
        if let Some(t) = tally {
            CacheTally::bump(&t.sp_misses);
        }
        let fresh = oracle.route_between(a, b, CostModel::Distance);
        cache.insert(key, fresh.clone());
        fresh
    }
}

/// Throughput-oriented front end over a borrowed [`Hris`] instance.
///
/// Cheap to construct; holds only cache and instrumentation state. All
/// methods take `&self` and the engine is `Sync`, so one engine may serve
/// many threads. Because it borrows its `Hris` (and through it the road
/// network) for its whole lifetime, a `QueryEngine` cannot outlive its data
/// or follow a live archive — for owned, `'static` serving (async runtimes,
/// spawned threads, live ingestion) use
/// [`EngineHandle`](crate::handle::EngineHandle) instead.
///
/// # Which entrypoint should I call?
///
/// [`QueryEngine::infer_query`] is the canonical single-query path and
/// [`QueryEngine::infer_batch_detailed`] the canonical batch path — every
/// other inference method is a thin wrapper that discards part of their
/// output. New code should call the canonical ones; the wrappers exist for
/// callers that want the narrower historical shapes.
pub struct QueryEngine<'a> {
    hris: &'a Hris<'a>,
    core: EngineCore,
}

impl<'a> QueryEngine<'a> {
    /// Engine with the default configuration (pair-parallel, both caches,
    /// instrumentation off).
    #[must_use]
    pub fn new(hris: &'a Hris<'a>) -> Self {
        QueryEngine::with_config(hris, EngineConfig::default())
    }

    /// Engine with an explicit configuration. When `cfg.obs.enabled`, the
    /// engine instruments itself onto a fresh private registry (reachable
    /// through [`QueryEngine::observability`]).
    #[must_use]
    pub fn with_config(hris: &'a Hris<'a>, cfg: EngineConfig) -> Self {
        let registry = cfg.obs.enabled.then(|| Arc::new(MetricsRegistry::new()));
        let core = EngineCore::build(cfg, registry);
        core.register_oracle_metrics(hris.network());
        QueryEngine { hris, core }
    }

    /// Engine instrumented onto a caller-owned registry (e.g. one shared
    /// with other components or scraped by an exporter). Implies
    /// `cfg.obs.enabled`.
    #[must_use]
    pub fn with_registry(
        hris: &'a Hris<'a>,
        mut cfg: EngineConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        cfg.obs.enabled = true;
        let core = EngineCore::build(cfg, Some(registry));
        core.register_oracle_metrics(hris.network());
        QueryEngine { hris, core }
    }

    fn ctx(&self) -> EngineCtx<'_> {
        EngineCtx {
            net: self.hris.network(),
            archive: self.hris.archive(),
            params: self.hris.params(),
        }
    }

    /// The wrapped system.
    #[must_use]
    pub fn hris(&self) -> &Hris<'a> {
        self.hris
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        self.core.config()
    }

    /// The engine's instrumentation, when enabled.
    #[must_use]
    pub fn observability(&self) -> Option<&EngineObs> {
        self.core.observability()
    }

    /// The explain/audit ring, when [`ExplainOptions`](crate::params::ExplainOptions)
    /// enabled it. The returned handle shares storage with the engine's ring.
    #[must_use]
    pub fn audit_ring(&self) -> Option<AuditRing> {
        self.core.audits().cloned()
    }

    /// Current cache counters (cumulative since construction). Each
    /// `(hits, misses)` pair is one consistent reading — see
    /// [`EngineCacheStats`] for the exact guarantees.
    #[must_use]
    pub fn cache_stats(&self) -> EngineCacheStats {
        self.core.cache_stats()
    }

    /// One query through the validation screen: answer plus its
    /// [`QueryOutcome`]. Never panics on malformed input.
    ///
    /// **This is the canonical single-query entrypoint** — the other
    /// single-query methods are wrappers that discard part of its output.
    #[must_use]
    pub fn infer_query(&self, query: &Trajectory, k: usize) -> QueryResult {
        self.core
            .infer_query_mode(self.ctx(), query, k, self.config().mode)
    }

    /// Top-`k` routes of one query (same contract as [`Hris::infer_routes`]).
    /// Thin wrapper over [`QueryEngine::infer_query`] that drops the
    /// [`QueryOutcome`] and per-pair statistics.
    #[must_use]
    pub fn infer_routes(&self, query: &Trajectory, k: usize) -> Vec<ScoredRoute> {
        self.infer_query(query, k)
            .globals
            .into_iter()
            .map(|g| ScoredRoute {
                route: g.route,
                log_score: g.log_score,
            })
            .collect()
    }

    /// The most likely single route. Thin wrapper over
    /// [`QueryEngine::infer_query`] with `k = 1`.
    #[must_use]
    pub fn infer_top1(&self, query: &Trajectory) -> Option<ScoredRoute> {
        self.infer_routes(query, 1).into_iter().next()
    }

    /// Full inference with per-pair instrumentation, in the historical
    /// tuple shape. Thin wrapper over [`QueryEngine::infer_query`] that
    /// drops the [`QueryOutcome`].
    #[must_use]
    pub fn infer_routes_detailed(
        &self,
        query: &Trajectory,
        k: usize,
    ) -> (Vec<GlobalRoute>, Vec<LocalStats>) {
        let r = self.infer_query(query, k);
        (r.globals, r.stats)
    }

    /// Every query of a batch through the validation screen, sharing both
    /// caches and — when `batch_parallel` is set — spreading queries across
    /// the pool.
    ///
    /// **This is the canonical batch entrypoint**;
    /// [`QueryEngine::infer_batch`] wraps it.
    #[must_use]
    pub fn infer_batch_detailed(&self, queries: &[Trajectory], k: usize) -> Vec<QueryResult> {
        self.core.infer_batch_detailed(self.ctx(), queries, k)
    }

    /// Top-`k` routes for every query of a batch. Thin wrapper over
    /// [`QueryEngine::infer_batch_detailed`] that keeps only the scored
    /// routes.
    #[must_use]
    pub fn infer_batch(&self, queries: &[Trajectory], k: usize) -> Vec<Vec<ScoredRoute>> {
        self.infer_batch_detailed(queries, k)
            .into_iter()
            .map(|r| {
                r.globals
                    .into_iter()
                    .map(|g| ScoredRoute {
                        route: g.route,
                        log_score: g.log_score,
                    })
                    .collect()
            })
            .collect()
    }

    /// Phases 1–2 under the engine's scheduling and caches (phase 3 input).
    #[must_use]
    pub fn local_inference(&self, query: &Trajectory) -> Vec<LocalInferenceResult> {
        self.core
            .local_inference_run(self.ctx(), query, self.config().mode, None, false, None)
            .locals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::HrisParams;
    use hris_roadnet::{generator, NetworkConfig};
    use hris_traj::{TrajId, TrajectoryArchive};

    fn sparse_setup() -> (hris_roadnet::RoadNetwork, Vec<Trajectory>) {
        // Empty archive → every pair takes the shortest-path fallback, so
        // the SP cache sees traffic deterministically.
        let net = generator::generate(&NetworkConfig::small(5));
        let mk = |id: u32, x0: f64| {
            Trajectory::new(
                TrajId(id),
                (0..4)
                    .map(|k| {
                        hris_traj::GpsPoint::new(
                            hris_geo::Point::new(x0 + k as f64 * 400.0, 120.0),
                            k as f64 * 120.0,
                        )
                    })
                    .collect(),
            )
        };
        let queries = vec![mk(0, 0.0), mk(1, 0.0), mk(2, 200.0)];
        (net, queries)
    }

    #[test]
    fn sp_cache_reused_across_batch_queries() {
        let (net, queries) = sparse_setup();
        let hris = Hris::new(&net, TrajectoryArchive::empty(), HrisParams::default());
        let engine = QueryEngine::new(&hris);
        let out = engine.infer_batch(&queries, 2);
        assert_eq!(out.len(), queries.len());
        let stats = engine.cache_stats();
        // Queries 0 and 1 are identical: the second one's fallbacks must be
        // answered from precomputed shortest-path state. The oracle sits in
        // front of the route cache, so repeats land on its cached trees;
        // the demoted SpCache only ever sees first-time oracle misses.
        let oracle = net.sp_oracle();
        assert!(
            oracle.hits() > 0,
            "expected oracle hits, got {}/{} and {stats:?}",
            oracle.hits(),
            oracle.misses()
        );
        assert_eq!(stats.sp_hits, 0, "oracle should absorb repeats: {stats:?}");
        assert!(
            stats.candidate_hits > 0,
            "expected memo hits, got {stats:?}"
        );
    }

    #[test]
    fn disabled_caches_report_zero() {
        let (net, queries) = sparse_setup();
        let hris = Hris::new(&net, TrajectoryArchive::empty(), HrisParams::default());
        let engine = QueryEngine::with_config(&hris, EngineConfig::sequential());
        let _ = engine.infer_batch(&queries, 2);
        let stats = engine.cache_stats();
        assert_eq!(stats.sp_hits, 0);
        assert_eq!(stats.candidate_hits, 0);
        assert!(stats.candidate_misses > 0);
    }

    #[test]
    fn pair_parallel_threshold_degrades_to_sequential() {
        let (net, queries) = sparse_setup();
        let hris = Hris::new(&net, TrajectoryArchive::empty(), HrisParams::default());
        // Every query above has 3 pairs: a threshold of 4 must route them
        // sequentially, a threshold of 0 must fan out — and both must
        // return routes byte-identical to each other (scheduling is
        // forbidden from changing results).
        let gated = QueryEngine::with_config(
            &hris,
            EngineConfig::builder()
                .pair_parallel_min_pairs(4)
                .build()
                .unwrap(),
        );
        let eager = QueryEngine::with_config(
            &hris,
            EngineConfig::builder()
                .pair_parallel_min_pairs(0)
                .build()
                .unwrap(),
        );
        assert_eq!(
            gated.core.effective_mode(ExecMode::PairParallel, 3),
            ExecMode::Sequential
        );
        assert_eq!(
            eager.core.effective_mode(ExecMode::PairParallel, 3),
            ExecMode::PairParallel
        );
        // An explicit sequential request is never upgraded.
        assert_eq!(
            eager.core.effective_mode(ExecMode::Sequential, 100),
            ExecMode::Sequential
        );
        for q in &queries {
            let a = gated.infer_routes(q, 3);
            let b = eager.infer_routes(q, 3);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.route, y.route);
                assert_eq!(x.log_score.to_bits(), y.log_score.to_bits());
            }
        }
    }

    #[test]
    fn degenerate_queries_match_hris() {
        let (net, _) = sparse_setup();
        let hris = Hris::new(&net, TrajectoryArchive::empty(), HrisParams::default());
        let engine = QueryEngine::new(&hris);

        let empty = Trajectory::new(TrajId(0), vec![]);
        assert!(engine.infer_routes(&empty, 3).is_empty());

        let single = Trajectory::new(
            TrajId(0),
            vec![hris_traj::GpsPoint::new(
                hris_geo::Point::new(80.0, 90.0),
                0.0,
            )],
        );
        let ours = engine.infer_routes(&single, 3);
        let theirs = hris.infer_routes(&single, 3);
        assert_eq!(ours.len(), theirs.len());
        assert_eq!(ours[0].route, theirs[0].route);
    }

    #[test]
    fn observability_off_by_default_and_on_when_asked() {
        let (net, queries) = sparse_setup();
        let hris = Hris::new(&net, TrajectoryArchive::empty(), HrisParams::default());
        let plain = QueryEngine::new(&hris);
        assert!(plain.observability().is_none());

        let observed = QueryEngine::with_config(
            &hris,
            EngineConfig::builder().observability(true).build().unwrap(),
        );
        let _ = observed.infer_batch(&queries, 2);
        let obs = observed.observability().expect("instrumentation on");
        let snap = obs.snapshot();
        assert_eq!(
            snap.counter("hris_engine_queries_total"),
            Some(queries.len() as u64)
        );
        assert_eq!(snap.counter("hris_engine_batches_total"), Some(1));
        assert_eq!(obs.traces().len(), queries.len());
    }
}
