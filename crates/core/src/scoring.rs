//! Route scoring behind a unified [`RouteScorer`] API, plus the learned
//! re-ranking layer over K-GRI.
//!
//! The paper scores global routes with hand-set popularity and
//! transition-confidence functions ([`crate::global`]). This module puts
//! that scoring behind a trait so callers — the engine, the sharded
//! router's seam splice, the eval harness — all go through one seam:
//!
//! - [`PaperScorer`] reproduces the legacy free functions (`k_gri_with`,
//!   `brute_force_top_k_with`) bit for bit; it *is* the paper.
//! - [`LearnedScorer`] wraps a [`PaperScorer`] and re-ranks its top-K
//!   output with a plain-SGD logistic model ([`RerankModel`]) over
//!   per-candidate-route features ([`RouteFeatures`]) — route shape, how
//!   well the historical archive supports it, and how far it strays from
//!   the shortest path. Related work (Feature Engineering for Map
//!   Matching, arXiv 1409.0797; CRF route-preference mining, arXiv
//!   1410.4461) shows route choice is learnable from exactly such
//!   features.
//!
//! The re-ranker never touches the K-GRI dynamic program: it permutes the
//! final top-K list (stable sort, so learned-score ties keep the paper
//! order). A zero model is therefore a byte-identical no-op, and with
//! re-ranking disabled the [`PaperScorer`] path is the only code that
//! runs.

use crate::global::{
    brute_force_top_k_impl, k_gri_impl, log_transition_confidence_sorted, route_traj_ids_sorted,
    GlobalRoute,
};
use crate::local::LocalInferenceResult;
use crate::params::{HrisParams, PopularityModel, RerankOptions};
use hris_roadnet::{CostModel, RoadNetwork};
use serde::{Deserialize, Serialize};

/// Borrowed inputs of one global-inference scoring pass: the network, the
/// per-pair local inference results, and how many global routes to return.
#[derive(Clone, Copy)]
pub struct ScoringCtx<'a> {
    /// The road network (shared by every shard in a sharded deployment, so
    /// network-derived features agree across the seam splice).
    pub net: &'a RoadNetwork,
    /// One local-inference result per consecutive query-point pair.
    pub locals: &'a [LocalInferenceResult],
    /// How many global routes to return.
    pub k: usize,
}

impl<'a> ScoringCtx<'a> {
    /// Bundles the inputs of one scoring pass.
    #[must_use]
    pub fn new(net: &'a RoadNetwork, locals: &'a [LocalInferenceResult], k: usize) -> Self {
        ScoringCtx { net, locals, k }
    }
}

/// Global route scoring: turn per-pair local routes into ranked global
/// routes. Implementations must be deterministic — same context, same
/// output, bit for bit — because the engine's determinism and
/// shard-equivalence suites compare results across execution modes and
/// shard counts.
pub trait RouteScorer {
    /// A short stable name for diagnostics.
    fn name(&self) -> &'static str;

    /// Top-K global routes via the efficient path (the K-GRI dynamic
    /// program for the paper scorer).
    fn top_k(&self, ctx: &ScoringCtx<'_>) -> Vec<GlobalRoute>;

    /// Top-K via exhaustive enumeration — the `O(mⁿ)` oracle used for
    /// Figure 14b and as a test oracle. Must rank identically to
    /// [`RouteScorer::top_k`].
    fn top_k_brute_force(&self, ctx: &ScoringCtx<'_>) -> Vec<GlobalRoute>;
}

/// The paper's scoring, exactly: popularity `f` (Equation 1) and
/// transition confidence `g` (Equation 2) threaded by the K-GRI dynamic
/// program (Algorithm 3). Byte-identical to the legacy `k_gri_with` free
/// function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperScorer {
    /// Entropy floor keeping single-segment routes rankable (see
    /// [`crate::global::popularity`]).
    pub entropy_floor: f64,
    /// Which form of Equation 1 scores local-route popularity.
    pub model: PopularityModel,
}

impl PaperScorer {
    /// A paper scorer with explicit knobs.
    #[must_use]
    pub fn new(entropy_floor: f64, model: PopularityModel) -> Self {
        PaperScorer {
            entropy_floor,
            model,
        }
    }

    /// The scorer the given parameter set implies.
    #[must_use]
    pub fn from_params(params: &HrisParams) -> Self {
        PaperScorer {
            entropy_floor: params.entropy_floor,
            model: params.popularity_model,
        }
    }
}

impl RouteScorer for PaperScorer {
    fn name(&self) -> &'static str {
        "paper"
    }

    fn top_k(&self, ctx: &ScoringCtx<'_>) -> Vec<GlobalRoute> {
        k_gri_impl(ctx.net, ctx.locals, ctx.k, self.entropy_floor, self.model)
    }

    fn top_k_brute_force(&self, ctx: &ScoringCtx<'_>) -> Vec<GlobalRoute> {
        brute_force_top_k_impl(ctx.net, ctx.locals, ctx.k, self.entropy_floor, self.model)
    }
}

/// Number of features in a [`RouteFeatures`] vector.
pub const NUM_FEATURES: usize = 8;

/// Feature names, in [`RouteFeatures::to_array`] order.
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "turn_count",
    "mean_pair_popularity",
    "min_pair_popularity",
    "transition_sum",
    "travel_time_residual",
    "length_ratio",
    "support_density",
    "log_score",
];

/// Per-candidate-route features the re-ranker scores. All values are
/// finite for any input (guards below replace degenerate divisions), and
/// extraction is a pure sequential function of the context — deterministic
/// regardless of thread count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouteFeatures {
    /// Sharp direction changes (> 45°) between consecutive segments of the
    /// stitched route. Invariant under uniform coordinate scaling.
    pub turn_count: f64,
    /// Mean popularity `f(Rᵢ)` across the chosen local routes.
    pub mean_pair_popularity: f64,
    /// Minimum popularity across the chosen local routes — one unsupported
    /// pair should be able to sink a candidate.
    pub min_pair_popularity: f64,
    /// `Σ ln g(Rᵢ, Rᵢ₊₁)` over consecutive chosen pairs (0 for a
    /// single-pair query); in `[−(n−1), 0]`.
    pub transition_sum: f64,
    /// `(route travel time − shortest-path travel time) / shortest-path
    /// travel time` between the route's first and last segment via the
    /// `SpOracle`; 0 when no shortest path exists.
    pub travel_time_residual: f64,
    /// Route length over the shortest-path distance between its first and
    /// last segment; 1 when no shortest path exists.
    pub length_ratio: f64,
    /// Distinct historical trajectories supporting the route
    /// (`route_traj_ids` union across pairs) per route segment.
    pub support_density: f64,
    /// The paper's own `ln s(R)` — the learned model sees what K-GRI saw.
    pub log_score: f64,
}

impl RouteFeatures {
    /// The features as a fixed-size array, [`FEATURE_NAMES`] order.
    #[must_use]
    pub fn to_array(&self) -> [f64; NUM_FEATURES] {
        [
            self.turn_count,
            self.mean_pair_popularity,
            self.min_pair_popularity,
            self.transition_sum,
            self.travel_time_residual,
            self.length_ratio,
            self.support_density,
            self.log_score,
        ]
    }
}

/// `0.0` for non-finite values — features must never poison the sigmoid.
fn finite_or_zero(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Extracts the re-ranking features of one candidate global route.
///
/// `entropy_floor` and `model` must match the scorer that produced the
/// candidate, so the popularity features line up with the DP's own `f`.
#[must_use]
pub fn extract_features(
    ctx: &ScoringCtx<'_>,
    candidate: &GlobalRoute,
    entropy_floor: f64,
    model: PopularityModel,
) -> RouteFeatures {
    let net = ctx.net;

    // Popularity of each chosen local route, exactly as `precompute` sees
    // it (before the ln/floor used by the DP).
    let mut pop_sum = 0.0;
    let mut pop_min = f64::INFINITY;
    let mut n_pairs = 0usize;
    for (i, &j) in candidate.local_indices.iter().enumerate() {
        let Some(local) = ctx.locals.get(i) else {
            break;
        };
        let Some(route) = local.routes.get(j) else {
            continue;
        };
        let f = crate::local::route_popularity_with(route, &local.edge_index, entropy_floor, model);
        pop_sum += f;
        pop_min = pop_min.min(f);
        n_pairs += 1;
    }
    let mean_pop = if n_pairs == 0 {
        0.0
    } else {
        pop_sum / n_pairs as f64
    };
    let min_pop = if n_pairs == 0 { 0.0 } else { pop_min };

    // Transition-confidence sum and archive support across chosen pairs.
    let ids: Vec<Vec<_>> = candidate
        .local_indices
        .iter()
        .enumerate()
        .filter_map(|(i, &j)| {
            let local = ctx.locals.get(i)?;
            let route = local.routes.get(j)?;
            Some(route_traj_ids_sorted(route, local))
        })
        .collect();
    let transition_sum: f64 = ids
        .windows(2)
        .map(|w| log_transition_confidence_sorted(&w[0], &w[1]))
        .sum();
    let mut support: Vec<_> = ids.into_iter().flatten().collect();
    support.sort_unstable();
    support.dedup();
    let support_density = if candidate.route.is_empty() {
        0.0
    } else {
        support.len() as f64 / candidate.route.len() as f64
    };

    // Sharp turns along the stitched route: consecutive segment heading
    // vectors at an angle above 45°, detected with dot/cross products only
    // (no trigonometry — exact under power-of-two coordinate scaling).
    let mut turn_count = 0.0;
    let segs = candidate.route.segments();
    for w in segs.windows(2) {
        let (a, b) = (net.segment(w[0]), net.segment(w[1]));
        let (pa, qa) = (net.node(a.from), net.node(a.to));
        let (pb, qb) = (net.node(b.from), net.node(b.to));
        let (ux, uy) = (qa.x - pa.x, qa.y - pa.y);
        let (vx, vy) = (qb.x - pb.x, qb.y - pb.y);
        if (ux == 0.0 && uy == 0.0) || (vx == 0.0 && vy == 0.0) {
            continue;
        }
        let dot = ux * vx + uy * vy;
        let cross = ux * vy - uy * vx;
        // angle > 45° ⇔ cos < √2/2 ⇔ |cross| > dot (or dot ≤ 0).
        if dot <= 0.0 || cross.abs() > dot {
            turn_count += 1.0;
        }
    }

    // Shortest-path residuals between the route's own endpoints.
    let mut travel_time_residual = 0.0;
    let mut length_ratio = 1.0;
    if let (Some(&first), Some(&last)) = (segs.first(), segs.last()) {
        if first != last {
            let oracle = net.sp_oracle();
            if let Some(sp_t) = oracle.route_cost_between(first, last, CostModel::Time) {
                if sp_t > 0.0 {
                    travel_time_residual =
                        finite_or_zero((candidate.route.travel_time(net) - sp_t) / sp_t);
                }
            }
            if let Some(sp_d) = oracle.route_cost_between(first, last, CostModel::Distance) {
                if sp_d > 0.0 {
                    let r = candidate.route.length(net) / sp_d;
                    length_ratio = if r.is_finite() { r } else { 1.0 };
                }
            }
        }
    }

    RouteFeatures {
        turn_count,
        mean_pair_popularity: finite_or_zero(mean_pop),
        min_pair_popularity: finite_or_zero(min_pop),
        transition_sum: finite_or_zero(transition_sum),
        travel_time_residual,
        length_ratio,
        support_density: finite_or_zero(support_density),
        log_score: finite_or_zero(candidate.log_score),
    }
}

/// Logistic re-ranking model: standardized features, linear weights, a
/// bias, and a sigmoid. Learned offline by [`train_logistic`] on
/// simulator-fleet ground truth; serialized through the vendored serde so
/// trained weights travel as plain JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RerankModel {
    /// One weight per feature, [`FEATURE_NAMES`] order.
    pub weights: Vec<f64>,
    /// Intercept.
    pub bias: f64,
    /// Per-feature standardization means (from the training set).
    pub means: Vec<f64>,
    /// Per-feature standardization scales; must be positive.
    pub scales: Vec<f64>,
}

impl RerankModel {
    /// The all-zero model: every route scores 0.5, the stable re-sort
    /// keeps the paper order, re-ranking is a byte-identical no-op.
    #[must_use]
    pub fn zeroed() -> Self {
        RerankModel {
            weights: vec![0.0; NUM_FEATURES],
            bias: 0.0,
            means: vec![0.0; NUM_FEATURES],
            scales: vec![1.0; NUM_FEATURES],
        }
    }

    /// A model from raw weights and bias (no standardization).
    ///
    /// # Panics
    /// Panics when `weights` is not [`NUM_FEATURES`] long.
    #[must_use]
    pub fn from_weights(weights: Vec<f64>, bias: f64) -> Self {
        assert_eq!(weights.len(), NUM_FEATURES, "one weight per feature");
        RerankModel {
            weights,
            bias,
            means: vec![0.0; NUM_FEATURES],
            scales: vec![1.0; NUM_FEATURES],
        }
    }

    /// Structural validity: correct dimensions, finite parameters,
    /// positive scales. Checked by `EngineConfigBuilder::build`.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.weights.len() == NUM_FEATURES
            && self.means.len() == NUM_FEATURES
            && self.scales.len() == NUM_FEATURES
            && self.weights.iter().all(|w| w.is_finite())
            && self.bias.is_finite()
            && self.means.iter().all(|m| m.is_finite())
            && self.scales.iter().all(|s| s.is_finite() && *s > 0.0)
    }

    /// `σ(w · standardize(x) + b)` ∈ (0, 1).
    #[must_use]
    pub fn score(&self, features: &RouteFeatures) -> f64 {
        let x = features.to_array();
        let mut z = self.bias;
        for (i, &xi) in x.iter().enumerate() {
            z += self.weights[i] * (xi - self.means[i]) / self.scales[i];
        }
        sigmoid(z)
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Plain-SGD training knobs for [`train_logistic`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Step size.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Shuffle seed — training is deterministic for a fixed seed.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            epochs: 40,
            learning_rate: 0.1,
            l2: 1e-4,
            seed: 42,
        }
    }
}

/// Trains a logistic re-ranker with plain SGD (no dependencies beyond the
/// standard library). Features are standardized to zero mean / unit
/// variance over the training set; the statistics are stored in the model
/// so inference standardizes identically. Deterministic for a fixed
/// [`SgdConfig::seed`].
#[must_use]
pub fn train_logistic(samples: &[(RouteFeatures, bool)], cfg: &SgdConfig) -> RerankModel {
    if samples.is_empty() {
        return RerankModel::zeroed();
    }
    let n = samples.len() as f64;
    let xs: Vec<[f64; NUM_FEATURES]> = samples.iter().map(|(f, _)| f.to_array()).collect();
    let mut means = [0.0f64; NUM_FEATURES];
    for x in &xs {
        for i in 0..NUM_FEATURES {
            means[i] += x[i];
        }
    }
    for m in &mut means {
        *m /= n;
    }
    let mut scales = [0.0f64; NUM_FEATURES];
    for x in &xs {
        for i in 0..NUM_FEATURES {
            let d = x[i] - means[i];
            scales[i] += d * d;
        }
    }
    for s in &mut scales {
        *s = (*s / n).sqrt();
        // Constant features carry no signal; a unit scale keeps their
        // standardized value at a harmless 0.
        if !s.is_finite() || *s <= 1e-12 {
            *s = 1.0;
        }
    }
    let std: Vec<[f64; NUM_FEATURES]> = xs
        .iter()
        .map(|x| {
            let mut z = [0.0; NUM_FEATURES];
            for i in 0..NUM_FEATURES {
                z[i] = (x[i] - means[i]) / scales[i];
            }
            z
        })
        .collect();

    let mut w = [0.0f64; NUM_FEATURES];
    let mut b = 0.0f64;
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut rng = cfg.seed | 1; // xorshift64* must not start at 0
    for _ in 0..cfg.epochs {
        // Fisher–Yates with a tiny deterministic xorshift64* generator.
        for i in (1..order.len()).rev() {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let j = (rng.wrapping_mul(0x2545_F491_4F6C_DD1D) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        for &idx in &order {
            let x = &std[idx];
            let y = if samples[idx].1 { 1.0 } else { 0.0 };
            let mut z = b;
            for i in 0..NUM_FEATURES {
                z += w[i] * x[i];
            }
            let err = sigmoid(z) - y;
            for i in 0..NUM_FEATURES {
                w[i] -= cfg.learning_rate * (err * x[i] + cfg.l2 * w[i]);
            }
            b -= cfg.learning_rate * err;
        }
    }
    RerankModel {
        weights: w.to_vec(),
        bias: b,
        means: means.to_vec(),
        scales: scales.to_vec(),
    }
}

/// What one re-ranking pass did — feeds the `hris_rerank_*` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RerankOutcome {
    /// Candidate routes scored by the model.
    pub rescored: usize,
    /// Whether the top-1 route changed relative to the paper order.
    pub top1_changed: bool,
}

/// [`PaperScorer`] plus a logistic re-rank of its top-K output.
///
/// The DP arithmetic is untouched; the learned model only permutes the
/// final list (stable sort on the learned score, descending), so ties —
/// including the all-tie produced by a zero model — preserve the paper
/// order exactly.
#[derive(Debug, Clone, Copy)]
pub struct LearnedScorer<'m> {
    paper: PaperScorer,
    model: &'m RerankModel,
}

impl<'m> LearnedScorer<'m> {
    /// Wraps a paper scorer with a learned re-ranking model.
    #[must_use]
    pub fn new(paper: PaperScorer, model: &'m RerankModel) -> Self {
        LearnedScorer { paper, model }
    }

    /// The wrapped paper scorer.
    #[must_use]
    pub fn paper(&self) -> &PaperScorer {
        &self.paper
    }

    /// The re-ranking model.
    #[must_use]
    pub fn model(&self) -> &RerankModel {
        self.model
    }

    /// Re-ranks an already-scored top-K list in place. `log_score` fields
    /// keep the honest paper scores; only the order changes.
    pub fn rerank_in_place(
        &self,
        ctx: &ScoringCtx<'_>,
        globals: &mut Vec<GlobalRoute>,
    ) -> RerankOutcome {
        if globals.len() < 2 {
            return RerankOutcome {
                rescored: globals.len(),
                top1_changed: false,
            };
        }
        let scores: Vec<f64> = globals
            .iter()
            .map(|g| {
                self.model.score(&extract_features(
                    ctx,
                    g,
                    self.paper.entropy_floor,
                    self.paper.model,
                ))
            })
            .collect();
        let mut order: Vec<usize> = (0..globals.len()).collect();
        // Stable: equal learned scores keep the paper (DP) order.
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        let top1_changed = order[0] != 0;
        let rescored = globals.len();
        if order.iter().enumerate().any(|(pos, &src)| pos != src) {
            let mut reordered: Vec<GlobalRoute> =
                order.iter().map(|&src| globals[src].clone()).collect();
            std::mem::swap(globals, &mut reordered);
        }
        RerankOutcome {
            rescored,
            top1_changed,
        }
    }
}

impl RouteScorer for LearnedScorer<'_> {
    fn name(&self) -> &'static str {
        "learned"
    }

    fn top_k(&self, ctx: &ScoringCtx<'_>) -> Vec<GlobalRoute> {
        let mut globals = self.paper.top_k(ctx);
        let _ = self.rerank_in_place(ctx, &mut globals);
        globals
    }

    fn top_k_brute_force(&self, ctx: &ScoringCtx<'_>) -> Vec<GlobalRoute> {
        let mut globals = self.paper.top_k_brute_force(ctx);
        let _ = self.rerank_in_place(ctx, &mut globals);
        globals
    }
}

/// The scorer a parameter set plus [`RerankOptions`] imply — the single
/// construction seam shared by the engine and the sharded router, so a
/// sharded deployment can never splice with a different scorer than its
/// shards (or than a single engine under the same config).
#[derive(Debug, Clone, Copy)]
pub enum ConfiguredScorer<'m> {
    /// Re-ranking off (the default): the paper scorer alone.
    Paper(PaperScorer),
    /// Re-ranking on: paper scorer + learned re-rank.
    Learned(LearnedScorer<'m>),
}

impl RouteScorer for ConfiguredScorer<'_> {
    fn name(&self) -> &'static str {
        match self {
            ConfiguredScorer::Paper(s) => s.name(),
            ConfiguredScorer::Learned(s) => s.name(),
        }
    }

    fn top_k(&self, ctx: &ScoringCtx<'_>) -> Vec<GlobalRoute> {
        match self {
            ConfiguredScorer::Paper(s) => s.top_k(ctx),
            ConfiguredScorer::Learned(s) => s.top_k(ctx),
        }
    }

    fn top_k_brute_force(&self, ctx: &ScoringCtx<'_>) -> Vec<GlobalRoute> {
        match self {
            ConfiguredScorer::Paper(s) => s.top_k_brute_force(ctx),
            ConfiguredScorer::Learned(s) => s.top_k_brute_force(ctx),
        }
    }
}

/// Builds the scorer implied by `params` + `rerank`. Enabled options
/// without a model (only constructible by hand — the builder validates)
/// fall back to the paper scorer rather than guessing.
#[must_use]
pub fn configured_scorer<'m>(
    params: &HrisParams,
    rerank: &'m RerankOptions,
) -> ConfiguredScorer<'m> {
    let paper = PaperScorer::from_params(params);
    match (rerank.enabled, rerank.model.as_ref()) {
        (true, Some(model)) => ConfiguredScorer::Learned(LearnedScorer::new(paper, model)),
        _ => ConfiguredScorer::Paper(paper),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(log_score: f64) -> RouteFeatures {
        RouteFeatures {
            turn_count: 2.0,
            mean_pair_popularity: 1.5,
            min_pair_popularity: 0.5,
            transition_sum: -0.25,
            travel_time_residual: 0.1,
            length_ratio: 1.2,
            support_density: 3.0,
            log_score,
        }
    }

    #[test]
    fn sigmoid_bounds_and_monotonicity() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!(sigmoid(50.0) > 0.999);
        assert!(sigmoid(-50.0) < 0.001);
        assert!(sigmoid(1.0) > sigmoid(0.5));
    }

    #[test]
    fn zeroed_model_scores_half_everywhere() {
        let m = RerankModel::zeroed();
        assert!(m.is_valid());
        assert_eq!(m.score(&features(0.0)), 0.5);
        assert_eq!(m.score(&features(-7.0)), 0.5);
    }

    #[test]
    fn model_validity_rejects_bad_shapes_and_values() {
        let mut m = RerankModel::zeroed();
        m.weights.pop();
        assert!(!m.is_valid());
        let mut m = RerankModel::zeroed();
        m.bias = f64::NAN;
        assert!(!m.is_valid());
        let mut m = RerankModel::zeroed();
        m.scales[0] = 0.0;
        assert!(!m.is_valid());
        let mut m = RerankModel::zeroed();
        m.weights[3] = f64::INFINITY;
        assert!(!m.is_valid());
    }

    #[test]
    fn training_separates_a_linearly_separable_set() {
        // Positives have higher log_score; everything else constant.
        let samples: Vec<(RouteFeatures, bool)> = (0..40)
            .map(|i| {
                let pos = i % 2 == 0;
                let ls = if pos { -1.0 } else { -5.0 };
                (features(ls + (i as f64) * 1e-3), pos)
            })
            .collect();
        let model = train_logistic(&samples, &SgdConfig::default());
        assert!(model.is_valid());
        let hi = model.score(&features(-1.0));
        let lo = model.score(&features(-5.0));
        assert!(hi > 0.5, "positive class must score above ½, got {hi}");
        assert!(lo < 0.5, "negative class must score below ½, got {lo}");
    }

    #[test]
    fn training_is_deterministic() {
        let samples: Vec<(RouteFeatures, bool)> =
            (0..20).map(|i| (features(i as f64), i % 3 == 0)).collect();
        let a = train_logistic(&samples, &SgdConfig::default());
        let b = train_logistic(&samples, &SgdConfig::default());
        assert_eq!(a, b);
        let c = train_logistic(
            &samples,
            &SgdConfig {
                seed: 7,
                ..SgdConfig::default()
            },
        );
        // A different shuffle seed is allowed to land elsewhere; the point
        // is that each seed is reproducible.
        let c2 = train_logistic(
            &samples,
            &SgdConfig {
                seed: 7,
                ..SgdConfig::default()
            },
        );
        assert_eq!(c, c2);
    }

    #[test]
    fn empty_training_set_yields_noop_model() {
        let model = train_logistic(&[], &SgdConfig::default());
        assert_eq!(model, RerankModel::zeroed());
    }

    #[test]
    fn model_serde_round_trip() {
        let samples: Vec<(RouteFeatures, bool)> =
            (0..12).map(|i| (features(i as f64), i % 2 == 0)).collect();
        let model = train_logistic(&samples, &SgdConfig::default());
        let json = serde_json::to_string(&model).unwrap();
        let back: RerankModel = serde_json::from_str(&json).unwrap();
        assert_eq!(model, back);
    }
}
