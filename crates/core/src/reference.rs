//! Reference-trajectory search (Section III-A, Definitions 6 and 7).
//!
//! For a consecutive query point pair `⟨q_i, q_{i+1}⟩`:
//!
//! - A **simple reference** is a historical trajectory whose nearest points
//!   to `q_i` and `q_{i+1}` both fall within radius `φ`, and whose
//!   in-between sub-trajectory is *speed-feasible*: every point `p` obeys
//!   `d(p, q_i) + d(p, q_{i+1}) ≤ Δt · V_max` (the query object could have
//!   detoured through `p` in the available time).
//! - A **spliced reference** stitches a trajectory coming from `q_i` with a
//!   different one heading into `q_{i+1}`, joined at a *splicing pair* of
//!   points at most `e` apart, and must satisfy the same conditions.
//!
//! Search uses two `φ`-range queries on the archive's R-tree, a hash join by
//! trajectory id for simple references, and a uniform-grid spatial join for
//! splicing pairs.

use hris_geo::Point;
use hris_roadnet::FxHashMap;
use hris_traj::{GpsPoint, TrajId, TrajectoryArchive};

/// How a reference was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefKind {
    /// Natively existing in the archive (Definition 6).
    Simple,
    /// Stitched from two trajectories (Definition 7).
    Spliced,
}

/// One reference trajectory for a query pair.
#[derive(Debug, Clone)]
pub struct RefTrajectory {
    /// Simple or spliced.
    pub kind: RefKind,
    /// The underlying historical trajectory id(s): one for simple
    /// references, two for spliced. Used by the transition-confidence
    /// function, which intersects reference sets *across* query pairs.
    pub sources: Vec<TrajId>,
    /// The reference's points between (approximately) `q_i` and `q_{i+1}`,
    /// in travel order.
    pub points: Vec<GpsPoint>,
}

/// All references of one query pair `⟨q_i, q_{i+1}⟩` (the paper's `C_i`).
#[derive(Debug, Clone, Default)]
pub struct ReferenceSet {
    /// The references; index in this vector is the reference's identity
    /// within the pair.
    pub refs: Vec<RefTrajectory>,
}

impl ReferenceSet {
    /// Number of references.
    #[must_use]
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// `true` when no reference was found.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Total number of reference points (the paper's `P_i`).
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.refs.iter().map(|r| r.points.len()).sum()
    }

    /// Reference-point density in points per km² over the minimum bounding
    /// box of `P_i` (the hybrid switch's `ρ`). Returns `f64::INFINITY` for a
    /// degenerate (zero-area) box with points present, 0 when empty.
    #[must_use]
    pub fn density_per_km2(&self) -> f64 {
        let n = self.num_points();
        if n == 0 {
            return 0.0;
        }
        let bbox = hris_geo::BBox::covering(
            self.refs
                .iter()
                .flat_map(|r| r.points.iter().map(|p| p.pos)),
        );
        let km2 = hris_geo::area_km2(&bbox);
        if km2 <= f64::EPSILON {
            f64::INFINITY
        } else {
            n as f64 / km2
        }
    }
}

/// Knobs of the reference search.
#[derive(Debug, Clone, Copy)]
pub struct RefSearchConfig {
    /// Search radius `φ`, metres.
    pub phi: f64,
    /// Splicing distance threshold `e`, metres (0 disables splicing).
    pub splice_eps: f64,
    /// Splicing only runs when fewer simple references than this were found
    /// — the paper introduces spliced references for "an area with sparse
    /// historical data"; cross-joining half-trajectories in dense areas
    /// adds thousands of near-duplicate references for no information gain.
    pub splice_when_simple_below: usize,
    /// Keep at most this many references per pair, preferring the ones
    /// whose nearest points sit closest to `q_i`/`q_{i+1}` (the paper's
    /// Figure 9 observation: beyond a point, extra references are
    /// "irrelevant trajectories which are less useful").
    pub max_refs: usize,
    /// Time-of-day filter `(query_tod_s, tolerance_s)`: only references
    /// observed within `tolerance_s` (circular, over a 24 h day) of the
    /// query's time-of-day qualify. `None` disables it. Implements the
    /// paper's future-work extension "incorporate more information into the
    /// route inference system, such as the time" — rush-hour queries should
    /// be explained by rush-hour traffic.
    pub temporal: Option<(f64, f64)>,
}

impl RefSearchConfig {
    /// Configuration with radius `phi` and splice threshold `splice_eps`,
    /// default gating/caps.
    #[must_use]
    pub fn new(phi: f64, splice_eps: f64) -> Self {
        RefSearchConfig {
            phi,
            splice_eps,
            splice_when_simple_below: 64,
            max_refs: 512,
            temporal: None,
        }
    }
}

/// Circular time-of-day distance in seconds over a 24 h period.
#[must_use]
pub fn tod_distance_s(a: f64, b: f64) -> f64 {
    const DAY: f64 = 86_400.0;
    let d = (a.rem_euclid(DAY) - b.rem_euclid(DAY)).abs();
    d.min(DAY - d)
}

/// Searches the references of one query pair.
///
/// * `dt` — the time available to travel the pair (`q_{i+1}.t − q_i.t`), s.
/// * `v_max` — the network's maximum speed (`V_max`), m/s.
#[must_use]
pub fn search_references(
    archive: &TrajectoryArchive,
    qi: Point,
    qj: Point,
    dt: f64,
    v_max: f64,
    cfg: &RefSearchConfig,
) -> ReferenceSet {
    let phi = cfg.phi;
    let splice_eps = cfg.splice_eps;
    let budget = dt * v_max;
    // Range queries at both endpoints.
    let near_i = archive.points_within(qi, phi);
    let near_j = archive.points_within(qj, phi);

    // Per-trajectory nearest hit to each endpoint, sorted by id. A
    // trajectory's globally nearest point to the endpoint is no farther than
    // any of its φ-hits, hence itself a φ-hit — so the argmin over the hits
    // (ties to the smallest index, as `Trajectory::nearest_point` breaks
    // them) IS the global nearest point, without scanning whole
    // trajectories. Trajectory ids are dense archive indices, so the argmin
    // runs over a flat per-trajectory slot array — no sort, no hashing.
    let num_trajs = archive.trajectories().len();
    let mut slots: Vec<(f64, u32)> = vec![(f64::INFINITY, u32::MAX); num_trajs];
    let nearest_per_traj =
        |slots: &mut [(f64, u32)], hits: &[&hris_traj::ArchivePoint], q: Point| {
            for p in hits {
                let slot = &mut slots[p.traj.index()];
                let d2 = p.pos.dist_sq(q);
                if d2 < slot.0 || (d2 == slot.0 && p.point_idx < slot.1) {
                    *slot = (d2, p.point_idx);
                }
            }
            let mut rows: Vec<(TrajId, usize)> = Vec::new();
            for (t, slot) in slots.iter_mut().enumerate() {
                if slot.1 != u32::MAX {
                    rows.push((TrajId(t as u32), slot.1 as usize));
                    *slot = (f64::INFINITY, u32::MAX);
                }
            }
            rows
        };
    let rows_i = nearest_per_traj(&mut slots, &near_i, qi);
    let rows_j = nearest_per_traj(&mut slots, &near_j, qj);

    // Trajectories present on both sides (merge walk, ascending-id order),
    // carrying their nearest indices.
    let mut both: Vec<(TrajId, usize, usize)> = Vec::new();
    {
        let (mut a, mut b) = (0usize, 0usize);
        while a < rows_i.len() && b < rows_j.len() {
            match rows_i[a].0.cmp(&rows_j[b].0) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    both.push((rows_i[a].0, rows_i[a].1, rows_j[b].1));
                    a += 1;
                    b += 1;
                }
            }
        }
    }

    let mut refs = Vec::new();
    // Relevance key for the per-pair cap: how close the reference's
    // endpoints come to the query points.
    let mut relevance: Vec<f64> = Vec::new();
    // Ids that qualified as simple references; ascending (pushed while
    // walking `both` in order), so membership is a binary search.
    let mut simple_ids: Vec<TrajId> = Vec::new();

    // --- simple references: merge join on trajectory id ------------------
    for &(id, m, n) in &both {
        let traj = archive.trajectory(id);
        let (pm, pn) = (&traj.points[m], &traj.points[n]);
        // Conditions 1–2: global nearest points within φ (guaranteed by the
        // range query; kept as a guard).
        if pm.pos.dist(qi) > phi || pn.pos.dist(qj) > phi {
            continue;
        }
        // The reference must travel in the query's direction.
        if n < m {
            continue;
        }
        // Optional temporal extension: the reference must be observed at a
        // compatible time of day.
        if let Some((tod, tol)) = cfg.temporal {
            if tod_distance_s(pm.t, tod) > tol {
                continue;
            }
        }
        // Condition 3: speed feasibility of every in-between point.
        let sub = &traj.points[m..=n];
        if speed_feasible(sub, qi, qj, budget) {
            simple_ids.push(id);
            relevance.push(pm.pos.dist(qi) + pn.pos.dist(qj));
            refs.push(RefTrajectory {
                kind: RefKind::Simple,
                sources: vec![id],
                points: sub.to_vec(),
            });
        }
    }

    // --- spliced references (sparse areas only) ---------------------------
    if splice_eps > 0.0 && refs.len() < cfg.splice_when_simple_below {
        // Side A: trajectories near q_i that did not qualify as simple.
        // For each, the tail from its nearest point to q_i onwards.
        let mut side_a: Vec<(TrajId, usize, usize)> = Vec::new(); // (id, nn_idx, last_usable)
        for &(id, m) in &rows_i {
            if simple_ids.binary_search(&id).is_ok() {
                continue;
            }
            let traj = archive.trajectory(id);
            if traj.points[m].pos.dist(qi) > phi {
                continue;
            }
            side_a.push((id, m, traj.len() - 1));
        }
        // Side B: trajectories near q_{i+1}, prefix up to the nearest point.
        let mut side_b: Vec<(TrajId, usize, usize)> = Vec::new(); // (id, first_usable, nn_idx)
        for &(id, n) in &rows_j {
            if simple_ids.binary_search(&id).is_ok() {
                continue;
            }
            let traj = archive.trajectory(id);
            if traj.points[n].pos.dist(qj) > phi {
                continue;
            }
            side_b.push((id, 0, n));
        }

        // Grid join: bucket side-B candidate points by `splice_eps` cells.
        let mut grid: FxHashMap<(i64, i64), Vec<(usize, usize)>> = FxHashMap::default(); // cell -> (b_pos, pt_idx)
        for (bi, &(id, first, nn)) in side_b.iter().enumerate() {
            let traj = archive.trajectory(id);
            for k in first..=nn {
                let p = traj.points[k].pos;
                // Only points inside the speed-feasible ellipse can appear
                // in a valid spliced reference.
                if p.dist(qi) + p.dist(qj) > budget {
                    continue;
                }
                grid.entry(cell(p, splice_eps)).or_default().push((bi, k));
            }
        }

        // For each (T_a, T_b) pair keep the best splicing pair.
        let mut best_pairs: FxHashMap<(usize, usize), (f64, usize, usize)> = FxHashMap::default();
        for (ai, &(id_a, nn_a, last)) in side_a.iter().enumerate() {
            let traj_a = archive.trajectory(id_a);
            for ka in nn_a..=last {
                let pa = traj_a.points[ka].pos;
                if pa.dist(qi) + pa.dist(qj) > budget {
                    continue;
                }
                let c = cell(pa, splice_eps);
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        let Some(hits) = grid.get(&(c.0 + dx, c.1 + dy)) else {
                            continue;
                        };
                        for &(bi, kb) in hits {
                            let id_b = side_b[bi].0;
                            if id_b == id_a {
                                continue;
                            }
                            let pb = archive.trajectory(id_b).points[kb].pos;
                            if pa.dist(pb) > splice_eps {
                                continue;
                            }
                            // Paper: among multiple splicing pairs of the
                            // same (T_a, T_b), keep the one minimising
                            // d(p_a, q_i) + d(p_b, q_{i+1}).
                            let key = (ai, bi);
                            let val = pa.dist(qi) + pb.dist(qj);
                            let entry = best_pairs.entry(key).or_insert((f64::INFINITY, 0, 0));
                            if val < entry.0 {
                                *entry = (val, ka, kb);
                            }
                        }
                    }
                }
            }
        }

        // Drain in (ai, bi) order so the spliced refs come out in a
        // deterministic order regardless of hash-map internals.
        let mut ordered: Vec<_> = best_pairs.into_iter().collect();
        ordered.sort_unstable_by_key(|&(key, _)| key);
        for ((ai, bi), (_, ka, kb)) in ordered {
            let (id_a, nn_a, _) = side_a[ai];
            let (id_b, _, nn_b) = side_b[bi];
            if kb > nn_b {
                continue;
            }
            let ta = archive.trajectory(id_a);
            let tb = archive.trajectory(id_b);
            let mut points: Vec<GpsPoint> = ta.points[nn_a..=ka].to_vec();
            points.extend_from_slice(&tb.points[kb..=nn_b]);
            // Re-check Definition 6's conditions on the stitched result.
            if points.len() < 2 {
                continue;
            }
            if !speed_feasible(&points, qi, qj, budget) {
                continue;
            }
            if let Some((tod, tol)) = cfg.temporal {
                if tod_distance_s(points[0].t, tod) > tol {
                    continue;
                }
            }
            relevance.push(points[0].pos.dist(qi) + points.last().expect("len>=2").pos.dist(qj));
            refs.push(RefTrajectory {
                kind: RefKind::Spliced,
                sources: vec![id_a, id_b],
                points,
            });
        }
    }

    // --- per-pair cap: keep the most relevant references -----------------
    if refs.len() > cfg.max_refs {
        let mut order: Vec<usize> = (0..refs.len()).collect();
        order.sort_by(|&a, &b| relevance[a].total_cmp(&relevance[b]));
        order.truncate(cfg.max_refs);
        order.sort_unstable(); // preserve original relative order
        let mut kept = Vec::with_capacity(cfg.max_refs);
        for i in order {
            kept.push(refs[i].clone());
        }
        refs = kept;
    }

    ReferenceSet { refs }
}

/// Condition 3 of Definition 6 over a point run.
fn speed_feasible(points: &[GpsPoint], qi: Point, qj: Point, budget: f64) -> bool {
    points
        .iter()
        .all(|p| p.pos.dist(qi) + p.pos.dist(qj) <= budget)
}

fn cell(p: Point, size: f64) -> (i64, i64) {
    ((p.x / size).floor() as i64, (p.y / size).floor() as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hris_traj::Trajectory;

    /// Archive with trajectories along the x-axis corridor.
    fn archive() -> TrajectoryArchive {
        let line = |y: f64, xs: &[f64], t0: f64| {
            Trajectory::new(
                TrajId(0),
                xs.iter()
                    .enumerate()
                    .map(|(k, &x)| GpsPoint::new(Point::new(x, y), t0 + k as f64 * 30.0))
                    .collect(),
            )
        };
        TrajectoryArchive::new(vec![
            // T0: full corridor pass, close to the axis → simple reference.
            line(20.0, &[0.0, 500.0, 1000.0, 1500.0, 2000.0], 0.0),
            // T1: only the first half (near q_i, not q_j).
            line(-30.0, &[0.0, 400.0, 900.0], 100.0),
            // T2: only the second half (near q_j, not q_i).
            line(40.0, &[1100.0, 1600.0, 2000.0], 200.0),
            // T3: far away parallel corridor.
            line(5_000.0, &[0.0, 1000.0, 2000.0], 0.0),
            // T4: passes both endpoints but detours wildly in between.
            Trajectory::new(
                TrajId(0),
                vec![
                    GpsPoint::new(Point::new(0.0, 0.0), 0.0),
                    GpsPoint::new(Point::new(1000.0, 9_000.0), 60.0),
                    GpsPoint::new(Point::new(2000.0, 0.0), 120.0),
                ],
            ),
        ])
    }

    const QI: Point = Point::new(0.0, 0.0);
    const QJ: Point = Point::new(2000.0, 0.0);

    #[test]
    fn finds_simple_reference() {
        let refs = search_references(
            &archive(),
            QI,
            QJ,
            180.0,
            25.0,
            &RefSearchConfig {
                splice_when_simple_below: usize::MAX,
                ..RefSearchConfig::new(100.0, 0.0)
            },
        );
        assert_eq!(refs.len(), 1);
        assert_eq!(refs.refs[0].kind, RefKind::Simple);
        assert_eq!(refs.refs[0].sources, vec![TrajId(0)]);
        assert_eq!(refs.refs[0].points.len(), 5);
    }

    #[test]
    fn speed_infeasible_reference_rejected() {
        // T4 passes both endpoints, but its middle point violates
        // condition 3 for any realistic budget.
        let refs = search_references(
            &archive(),
            QI,
            QJ,
            180.0,
            25.0,
            &RefSearchConfig {
                splice_when_simple_below: usize::MAX,
                ..RefSearchConfig::new(100.0, 0.0)
            },
        );
        assert!(refs.refs.iter().all(|r| r.sources != vec![TrajId(4)]));
        // With an enormous time budget T4 becomes feasible.
        let refs = search_references(
            &archive(),
            QI,
            QJ,
            10_000.0,
            25.0,
            &RefSearchConfig {
                splice_when_simple_below: usize::MAX,
                ..RefSearchConfig::new(100.0, 0.0)
            },
        );
        assert!(refs.refs.iter().any(|r| r.sources == vec![TrajId(4)]));
    }

    #[test]
    fn faraway_trajectory_ignored() {
        let refs = search_references(
            &archive(),
            QI,
            QJ,
            7200.0,
            25.0,
            &RefSearchConfig {
                splice_when_simple_below: usize::MAX,
                ..RefSearchConfig::new(100.0, 300.0)
            },
        );
        for r in &refs.refs {
            assert!(!r.sources.contains(&TrajId(3)));
        }
    }

    #[test]
    fn splices_half_trajectories() {
        // T1 ends near x = 900, T2 starts near x = 1100: they splice with
        // e ≥ ~213 m (dy = 70).
        let refs = search_references(
            &archive(),
            QI,
            QJ,
            300.0,
            25.0,
            &RefSearchConfig {
                splice_when_simple_below: usize::MAX,
                ..RefSearchConfig::new(100.0, 250.0)
            },
        );
        let spliced: Vec<_> = refs
            .refs
            .iter()
            .filter(|r| r.kind == RefKind::Spliced)
            .collect();
        assert_eq!(spliced.len(), 1);
        assert_eq!(spliced[0].sources, vec![TrajId(1), TrajId(2)]);
        // Points run from near q_i to near q_j in order.
        let pts = &spliced[0].points;
        assert!(pts.first().unwrap().pos.dist(QI) <= 100.0);
        assert!(pts.last().unwrap().pos.dist(QJ) <= 100.0);
    }

    #[test]
    fn splice_disabled_with_zero_eps() {
        let refs = search_references(
            &archive(),
            QI,
            QJ,
            300.0,
            25.0,
            &RefSearchConfig {
                splice_when_simple_below: usize::MAX,
                ..RefSearchConfig::new(100.0, 0.0)
            },
        );
        assert!(refs.refs.iter().all(|r| r.kind == RefKind::Simple));
    }

    #[test]
    fn too_small_splice_eps_finds_nothing() {
        let refs = search_references(
            &archive(),
            QI,
            QJ,
            300.0,
            25.0,
            &RefSearchConfig {
                splice_when_simple_below: usize::MAX,
                ..RefSearchConfig::new(100.0, 50.0)
            },
        );
        assert!(refs.refs.iter().all(|r| r.kind == RefKind::Simple));
    }

    #[test]
    fn empty_archive_yields_empty_set() {
        let refs = search_references(
            &TrajectoryArchive::empty(),
            QI,
            QJ,
            180.0,
            25.0,
            &RefSearchConfig::new(500.0, 150.0),
        );
        assert!(refs.is_empty());
        assert_eq!(refs.density_per_km2(), 0.0);
    }

    #[test]
    fn direction_matters() {
        // A trajectory travelling q_j → q_i must not count.
        let rev = Trajectory::new(
            TrajId(0),
            vec![
                GpsPoint::new(Point::new(2000.0, 10.0), 0.0),
                GpsPoint::new(Point::new(1000.0, 10.0), 60.0),
                GpsPoint::new(Point::new(0.0, 10.0), 120.0),
            ],
        );
        let a = TrajectoryArchive::new(vec![rev]);
        let refs = search_references(
            &a,
            QI,
            QJ,
            180.0,
            25.0,
            &RefSearchConfig {
                splice_when_simple_below: usize::MAX,
                ..RefSearchConfig::new(100.0, 0.0)
            },
        );
        assert!(refs.is_empty());
    }

    #[test]
    fn density_computation() {
        let refs = search_references(
            &archive(),
            QI,
            QJ,
            180.0,
            25.0,
            &RefSearchConfig {
                splice_when_simple_below: usize::MAX,
                ..RefSearchConfig::new(100.0, 0.0)
            },
        );
        // 5 points over a 2000 × ~0 m box → degenerate in y but positive in
        // practice thanks to GPS spread... here y is constant (20), so the
        // MBB is a line → infinite density.
        assert!(refs.density_per_km2().is_infinite());
    }
}
