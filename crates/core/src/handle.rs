//! Owned, lifetime-free serving handle over epoch-versioned archives.
//!
//! [`Hris`](crate::Hris)/[`QueryEngine`](crate::QueryEngine) borrow their
//! road network (and, transitively, their archive) for their whole
//! lifetime, which is the right shape for experiments but the wrong one for
//! a service: a borrowed engine cannot be moved into a spawned thread, an
//! async task, or a shard map, and it can never follow a live archive. The
//! [`EngineHandle`] here is the owned counterpart — `Arc<RoadNetwork>` plus
//! an archive *source* (a pinned [`ArchiveSnapshot`] or a live
//! [`SnapshotReader`]) — so it is `Send + Sync + 'static` and clone-free to
//! share behind an `Arc`.
//!
//! # Epochs and caches
//!
//! A handle on a live source re-reads the published snapshot at each query
//! (one `RwLock` read + `Arc` clone). When it observes a new epoch it
//! invalidates the engine caches once, then serves the query against the
//! new snapshot. Queries already in flight keep the `Arc` of the snapshot
//! they started with — ingestion never changes an answer mid-query, and a
//! batch is answered entirely against the single epoch it started on.

use crate::engine::{
    EngineCacheStats, EngineCore, EngineCtx, EngineObs, QueryOutcome, QueryResult, RejectReason,
};
use crate::global::GlobalRoute;
use crate::local::{LocalInferenceResult, LocalStats};
use crate::params::{EngineConfig, HrisParams};
use crate::pipeline::ScoredRoute;
use hris_obs::{
    Admission, AdmissionGate, AuditRing, Health, MetricsRegistry, MetricsServer, ServeState,
    SpanCollector,
};
use hris_roadnet::RoadNetwork;
use hris_traj::{ArchiveSnapshot, SnapshotReader, TrajectoryArchive};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where a handle gets its archive from.
enum ArchiveSource {
    /// One pinned epoch; the handle never changes data underneath you.
    Fixed(Arc<ArchiveSnapshot>),
    /// Follow an [`ArchiveWriter`](hris_traj::ArchiveWriter)'s published
    /// epochs.
    Live(SnapshotReader),
}

/// An owned HRIS serving handle: `Send + Sync + 'static`.
///
/// Construction takes `Arc<RoadNetwork>` plus either a plain archive
/// (pinned as a one-off snapshot), an existing [`ArchiveSnapshot`], or a
/// [`SnapshotReader`] to serve live ingestion. All query methods take
/// `&self`; wrap the handle in an `Arc` to share it across threads or
/// tasks.
///
/// # Which entrypoint should I call?
///
/// As on [`QueryEngine`](crate::QueryEngine): [`EngineHandle::infer_query`]
/// is the canonical single-query path, [`EngineHandle::infer_batch_detailed`]
/// the canonical batch path; everything else is a thin wrapper that
/// discards part of their output.
pub struct EngineHandle {
    net: Arc<RoadNetwork>,
    params: HrisParams,
    source: ArchiveSource,
    core: EngineCore,
    /// Epoch of the snapshot the caches were last (in)validated for.
    cached_epoch: AtomicU64,
    /// Bounded admission gate; `None` when `cfg.admission` is disabled
    /// (the zero-cost default: queries never touch a lock they don't
    /// need).
    gate: Option<AdmissionGate>,
}

impl EngineHandle {
    /// Handle over a fixed archive with the default configuration. The
    /// archive is pinned as epoch 0 of a standalone snapshot.
    #[must_use]
    pub fn new(net: Arc<RoadNetwork>, archive: TrajectoryArchive, params: HrisParams) -> Self {
        EngineHandle::with_config(net, archive, params, EngineConfig::default())
    }

    /// [`EngineHandle::new`] with an explicit configuration.
    #[must_use]
    pub fn with_config(
        net: Arc<RoadNetwork>,
        archive: TrajectoryArchive,
        params: HrisParams,
        cfg: EngineConfig,
    ) -> Self {
        Self::from_snapshot(net, Arc::new(ArchiveSnapshot::new(0, archive)), params, cfg)
    }

    /// Handle pinned to one already-published snapshot. Useful to freeze an
    /// epoch for reproducible evaluation while ingestion continues
    /// elsewhere.
    #[must_use]
    pub fn from_snapshot(
        net: Arc<RoadNetwork>,
        snapshot: Arc<ArchiveSnapshot>,
        params: HrisParams,
        cfg: EngineConfig,
    ) -> Self {
        let epoch = snapshot.epoch();
        Self::build(
            net,
            params,
            ArchiveSource::Fixed(snapshot),
            cfg,
            None,
            epoch,
        )
    }

    /// Handle following a live [`SnapshotReader`]: each query is served
    /// against the latest published epoch, with caches invalidated on
    /// epoch change.
    #[must_use]
    pub fn live(
        net: Arc<RoadNetwork>,
        reader: SnapshotReader,
        params: HrisParams,
        cfg: EngineConfig,
    ) -> Self {
        let epoch = reader.epoch();
        Self::build(net, params, ArchiveSource::Live(reader), cfg, None, epoch)
    }

    /// [`EngineHandle::from_snapshot`] instrumented onto a caller-owned
    /// registry (implies `cfg.obs.enabled`). This is the construction shape
    /// of a shard engine behind a router: each shard pins (or follows) its
    /// own archive and owns its own registry, and the router federates the
    /// per-shard registries under a `shard` label (see
    /// [`MetricsSnapshot::with_labels`](hris_obs::MetricsSnapshot)).
    #[must_use]
    pub fn from_snapshot_with_registry(
        net: Arc<RoadNetwork>,
        snapshot: Arc<ArchiveSnapshot>,
        params: HrisParams,
        mut cfg: EngineConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        cfg.obs.enabled = true;
        let epoch = snapshot.epoch();
        Self::build(
            net,
            params,
            ArchiveSource::Fixed(snapshot),
            cfg,
            Some(registry),
            epoch,
        )
    }

    /// [`EngineHandle::live`] instrumented onto a caller-owned registry
    /// (implies `cfg.obs.enabled`), so engine and ingest metrics can share
    /// one exporter.
    #[must_use]
    pub fn live_with_registry(
        net: Arc<RoadNetwork>,
        reader: SnapshotReader,
        params: HrisParams,
        mut cfg: EngineConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        cfg.obs.enabled = true;
        let epoch = reader.epoch();
        Self::build(
            net,
            params,
            ArchiveSource::Live(reader),
            cfg,
            Some(registry),
            epoch,
        )
    }

    fn build(
        net: Arc<RoadNetwork>,
        params: HrisParams,
        source: ArchiveSource,
        cfg: EngineConfig,
        registry: Option<Arc<MetricsRegistry>>,
        epoch: u64,
    ) -> Self {
        let registry =
            registry.or_else(|| cfg.obs.enabled.then(|| Arc::new(MetricsRegistry::new())));
        let gate = cfg
            .admission
            .enabled
            .then(|| AdmissionGate::new(cfg.admission.max_inflight, cfg.admission.max_queued));
        let core = EngineCore::build(cfg, registry);
        core.register_oracle_metrics(&net);
        EngineHandle {
            net,
            params,
            source,
            core,
            cached_epoch: AtomicU64::new(epoch),
            gate,
        }
    }

    /// The snapshot the next query would be served against. On a live
    /// source this re-reads the slot and performs the same epoch-change
    /// cache invalidation a query would.
    #[must_use]
    pub fn current_snapshot(&self) -> Arc<ArchiveSnapshot> {
        match &self.source {
            ArchiveSource::Fixed(snap) => Arc::clone(snap),
            ArchiveSource::Live(reader) => {
                let snap = reader.latest();
                let prev = self.cached_epoch.swap(snap.epoch(), Ordering::AcqRel);
                if prev != snap.epoch() {
                    // Two racing queries may both observe the change and
                    // both invalidate; clearing twice is harmless (and the
                    // caches hold no archive-derived data anyway — see
                    // `EngineCore::invalidate_caches`).
                    self.core.invalidate_caches();
                }
                snap
            }
        }
    }

    /// The epoch the handle last served (or would serve next, after a
    /// [`EngineHandle::current_snapshot`] call).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.cached_epoch.load(Ordering::Acquire)
    }

    /// The shared road network.
    #[must_use]
    pub fn network(&self) -> &Arc<RoadNetwork> {
        &self.net
    }

    /// The active parameters.
    #[must_use]
    pub fn params(&self) -> &HrisParams {
        &self.params
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        self.core.config()
    }

    /// The handle's instrumentation, when enabled.
    #[must_use]
    pub fn observability(&self) -> Option<&EngineObs> {
        self.core.observability()
    }

    /// The explain/audit ring, when [`ExplainOptions`](crate::params::ExplainOptions)
    /// enabled it. The returned handle shares storage with the engine's
    /// ring, so a router can pull shard-side audits by trace id.
    #[must_use]
    pub fn audit_ring(&self) -> Option<AuditRing> {
        self.core.audits().cloned()
    }

    /// Current cache counters (cumulative across epochs — invalidation
    /// drops entries, not history).
    #[must_use]
    pub fn cache_stats(&self) -> EngineCacheStats {
        self.core.cache_stats()
    }

    /// The handle's admission gate, when admission control is enabled.
    /// Exposes live queue-depth/shed numbers to harnesses and the varz
    /// endpoint.
    #[must_use]
    pub fn admission_gate(&self) -> Option<&AdmissionGate> {
        self.gate.as_ref()
    }

    /// Builds the empty result an admission shed returns, counting it on
    /// the way out (`n` queries' worth — a shed batch counts each query).
    fn shed_result(&self, n: usize) -> QueryResult {
        if let Some(obs) = self.core.observability() {
            for _ in 0..n {
                obs.record_shed();
            }
        }
        QueryResult {
            globals: Vec::new(),
            stats: Vec::new(),
            outcome: QueryOutcome::Rejected {
                reason: RejectReason::Overloaded,
            },
        }
    }

    /// One query through the validation screen against the current epoch:
    /// answer plus its [`QueryOutcome`](crate::QueryOutcome).
    ///
    /// With admission control enabled the query first passes the gate:
    /// it may wait in the bounded waiting room, and when that is full
    /// too it is shed immediately with
    /// [`RejectReason::Overloaded`](crate::RejectReason).
    ///
    /// **This is the canonical single-query entrypoint.**
    #[must_use]
    pub fn infer_query(&self, query: &hris_traj::Trajectory, k: usize) -> QueryResult {
        let _permit = match self.gate.as_ref().map(AdmissionGate::admit) {
            Some(Admission::Shed) => {
                self.core
                    .record_shed_audit(query.len(), self.core.mint_trace_id());
                return self.shed_result(1);
            }
            Some(Admission::Admitted(p)) => Some(p),
            None => None,
        };
        let snap = self.current_snapshot();
        self.core
            .infer_query_mode(self.ctx(&snap), query, k, self.config().mode)
    }

    /// [`EngineHandle::infer_query`] under a caller-minted trace id — the
    /// delegation seam of distributed tracing. A sharded router mints one
    /// trace id at its routing decision and threads it here so the shard's
    /// [`TraceRecord`](hris_obs::TraceRecord) and [`QueryAudit`](crate::QueryAudit)
    /// carry the router's identity instead of minting their own; the router
    /// then stitches them into one tree. Passing `trace_id = 0` records the
    /// query as untraced.
    ///
    /// An admission shed still records a `"shed"` audit under the given id.
    #[must_use]
    pub fn infer_query_with_trace(
        &self,
        query: &hris_traj::Trajectory,
        k: usize,
        trace_id: u64,
    ) -> QueryResult {
        let _permit = match self.gate.as_ref().map(AdmissionGate::admit) {
            Some(Admission::Shed) => {
                self.core.record_shed_audit(query.len(), trace_id);
                return self.shed_result(1);
            }
            Some(Admission::Admitted(p)) => Some(p),
            None => None,
        };
        let snap = self.current_snapshot();
        self.core
            .infer_query_traced(self.ctx(&snap), query, k, self.config().mode, trace_id)
    }

    /// Top-`k` routes of one query. Thin wrapper over
    /// [`EngineHandle::infer_query`] that drops the outcome and statistics.
    #[must_use]
    pub fn infer_routes(&self, query: &hris_traj::Trajectory, k: usize) -> Vec<ScoredRoute> {
        self.infer_query(query, k)
            .globals
            .into_iter()
            .map(|g| ScoredRoute {
                route: g.route,
                log_score: g.log_score,
            })
            .collect()
    }

    /// The most likely single route. Thin wrapper over
    /// [`EngineHandle::infer_query`] with `k = 1`.
    #[must_use]
    pub fn infer_top1(&self, query: &hris_traj::Trajectory) -> Option<ScoredRoute> {
        self.infer_routes(query, 1).into_iter().next()
    }

    /// Full inference in the historical tuple shape. Thin wrapper over
    /// [`EngineHandle::infer_query`] that drops the outcome.
    #[must_use]
    pub fn infer_routes_detailed(
        &self,
        query: &hris_traj::Trajectory,
        k: usize,
    ) -> (Vec<GlobalRoute>, Vec<LocalStats>) {
        let r = self.infer_query(query, k);
        (r.globals, r.stats)
    }

    /// Every query of a batch against **one** epoch: the snapshot is read
    /// once at batch start, so a batch's answers are mutually consistent
    /// even while ingestion publishes mid-batch.
    ///
    /// With admission control enabled the whole batch takes **one**
    /// permit — a batch is admitted or shed as a unit, never half-shed
    /// (a shed returns one `Rejected{Overloaded}` result per query).
    ///
    /// **This is the canonical batch entrypoint.**
    #[must_use]
    pub fn infer_batch_detailed(
        &self,
        queries: &[hris_traj::Trajectory],
        k: usize,
    ) -> Vec<QueryResult> {
        let _permit = match self.gate.as_ref().map(AdmissionGate::admit) {
            Some(Admission::Shed) => {
                return queries
                    .iter()
                    .map(|q| {
                        self.core
                            .record_shed_audit(q.len(), self.core.mint_trace_id());
                        self.shed_result(1)
                    })
                    .collect();
            }
            Some(Admission::Admitted(p)) => Some(p),
            None => None,
        };
        let snap = self.current_snapshot();
        self.core.infer_batch_detailed(self.ctx(&snap), queries, k)
    }

    /// Top-`k` routes for every query of a batch. Thin wrapper over
    /// [`EngineHandle::infer_batch_detailed`].
    #[must_use]
    pub fn infer_batch(
        &self,
        queries: &[hris_traj::Trajectory],
        k: usize,
    ) -> Vec<Vec<ScoredRoute>> {
        self.infer_batch_detailed(queries, k)
            .into_iter()
            .map(|r| {
                r.globals
                    .into_iter()
                    .map(|g| ScoredRoute {
                        route: g.route,
                        log_score: g.log_score,
                    })
                    .collect()
            })
            .collect()
    }

    /// Phases 1–2 against the current epoch (phase 3 input).
    #[must_use]
    pub fn local_inference(&self, query: &hris_traj::Trajectory) -> Vec<LocalInferenceResult> {
        self.local_inference_pinned(query).0
    }

    /// Phases 1–2 plus the epoch they were answered against. The snapshot
    /// is pinned **once** for the whole call, so the returned locals are
    /// mutually consistent even while ingestion publishes concurrently —
    /// this is the entrypoint a scatter-gather router uses, and the epoch
    /// is its proof of snapshot isolation (one whole epoch per shard per
    /// query).
    #[must_use]
    pub fn local_inference_pinned(
        &self,
        query: &hris_traj::Trajectory,
    ) -> (Vec<LocalInferenceResult>, u64) {
        let snap = self.current_snapshot();
        let locals = self
            .core
            .local_inference_run(
                self.ctx(&snap),
                query,
                self.config().mode,
                None,
                false,
                None,
            )
            .locals;
        (locals, snap.epoch())
    }

    /// [`EngineHandle::local_inference_pinned`] for several sub-queries
    /// against **one** pinned snapshot. A scatter-gather router whose query
    /// revisits a shard (an A–B–A pair assignment) calls this once per
    /// shard, so every sub-query of one routed query observes the same
    /// epoch even while ingestion publishes concurrently.
    #[must_use]
    pub fn local_inference_pinned_batch(
        &self,
        queries: &[hris_traj::Trajectory],
    ) -> (Vec<Vec<LocalInferenceResult>>, u64) {
        self.local_inference_pinned_batch_traced(queries, None)
    }

    /// [`EngineHandle::local_inference_pinned_batch`] under a router-owned
    /// span collector: each sub-query's `"candidates"` and `"local"` phase
    /// spans (plus per-pair children) are recorded into the router's
    /// collector, parented on the given span id (the router's per-shard
    /// span), so one cross-shard query stitches into a single tree with
    /// one clock origin. `spans = None` is byte-identical to the untraced
    /// batch.
    #[must_use]
    pub fn local_inference_pinned_batch_traced(
        &self,
        queries: &[hris_traj::Trajectory],
        spans: Option<(&SpanCollector, u64)>,
    ) -> (Vec<Vec<LocalInferenceResult>>, u64) {
        let snap = self.current_snapshot();
        let locals = queries
            .iter()
            .map(|q| {
                self.core
                    .local_inference_run(self.ctx(&snap), q, self.config().mode, None, false, spans)
                    .locals
            })
            .collect();
        (locals, snap.epoch())
    }

    /// Whether this handle follows a live [`SnapshotReader`] (`true`) or is
    /// pinned to a fixed snapshot (`false`). Staleness watchdogs only make
    /// sense for live sources — a fixed snapshot ages by construction.
    #[must_use]
    pub fn is_live(&self) -> bool {
        matches!(self.source, ArchiveSource::Live(_))
    }

    /// Seconds since the snapshot the next query would serve against was
    /// published. On a live source this tracks publisher health; on a fixed
    /// source it grows monotonically since the pin.
    #[must_use]
    pub fn snapshot_age_seconds(&self) -> f64 {
        self.current_snapshot().age_seconds()
    }

    /// Starts the zero-dependency telemetry server for this handle on
    /// `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// The server exposes `/metrics` (Prometheus text), `/healthz` (flips
    /// unhealthy when [`EngineHandle::snapshot_age_seconds`] exceeds
    /// [`ObsOptions::staleness_bound_s`](crate::ObsOptions)), `/varz`
    /// (JSON metrics + rolling latency windows) and `/debug/traces` +
    /// `/debug/slow`. Each `/metrics` scrape refreshes the
    /// `hris_snapshot_age_seconds` watchdog gauge first.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when observability is disabled on this handle;
    /// otherwise whatever binding the listener returns.
    pub fn serve_metrics(
        self: &Arc<Self>,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<MetricsServer> {
        let Some(obs) = self.core.observability() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "observability is disabled; enable it (EngineConfig::builder().observability(true)) \
                 or construct the handle with live_with_registry before serving telemetry",
            ));
        };
        let registry = Arc::clone(obs.registry());
        let bound = self.config().obs.staleness_bound_s;
        let age_gauge = registry.gauge(
            "hris_snapshot_age_seconds",
            "Seconds since the served archive snapshot was published (staleness watchdog).",
        );
        let on_scrape = Arc::clone(self);
        let on_health = Arc::clone(self);
        let on_varz = Arc::clone(self);
        let mut state = ServeState::new(Arc::clone(&registry))
            .with_traces(obs.trace_ring())
            .pre_scrape(move || {
                // The gauge is integral; health checks below use the exact
                // float so sub-second staleness bounds stay testable.
                age_gauge.set(on_scrape.snapshot_age_seconds().round() as i64);
            })
            .health_check("snapshot_freshness", move || {
                let age = on_health.snapshot_age_seconds();
                if age <= bound {
                    Health::Ok
                } else {
                    Health::Unhealthy(format!(
                        "snapshot is {age:.1}s old (staleness bound {bound}s)"
                    ))
                }
            })
            .varz_section("engine_latency", move || {
                on_varz
                    .observability()
                    .map_or_else(|| "null".to_string(), EngineObs::rolling_latency_json)
            });
        if let Some(gate) = &self.gate {
            let inflight_gauge = registry.gauge(
                "hris_admission_inflight",
                "Queries currently holding an admission execution slot.",
            );
            let queued_gauge = registry.gauge(
                "hris_admission_queued",
                "Queries currently waiting for an admission slot (bounded).",
            );
            let watermark_gauge = registry.gauge(
                "hris_admission_queued_high_watermark",
                "Highest waiting-room occupancy observed since startup.",
            );
            let on_gate_scrape = gate.clone();
            let on_gate_health = gate.clone();
            let on_gate_varz = gate.clone();
            state = state
                .pre_scrape(move || {
                    inflight_gauge.set(on_gate_scrape.inflight() as i64);
                    queued_gauge.set(on_gate_scrape.queued() as i64);
                    watermark_gauge.set(on_gate_scrape.queued_high_watermark() as i64);
                })
                .health_check("admission_pressure", move || {
                    if on_gate_health.saturated() {
                        Health::Unhealthy(format!(
                            "admission waiting room saturated ({} inflight, {} queued)",
                            on_gate_health.inflight(),
                            on_gate_health.queued()
                        ))
                    } else {
                        Health::Ok
                    }
                })
                .varz_section("admission", move || {
                    format!(
                        "{{\"inflight\":{},\"queued\":{},\"max_inflight\":{},\"max_queued\":{},\
                         \"queued_high_watermark\":{},\"shed_total\":{}}}",
                        on_gate_varz.inflight(),
                        on_gate_varz.queued(),
                        on_gate_varz.max_inflight(),
                        on_gate_varz.max_queued(),
                        on_gate_varz.queued_high_watermark(),
                        on_gate_varz.shed_total()
                    )
                });
        }
        state.serve(addr)
    }

    fn ctx<'e>(&'e self, snap: &'e ArchiveSnapshot) -> EngineCtx<'e> {
        EngineCtx {
            net: &self.net,
            archive: snap.archive(),
            params: &self.params,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hris_roadnet::{generator, NetworkConfig};
    use hris_traj::{ArchiveWriter, GpsPoint, TrajId, Trajectory};

    fn net() -> Arc<RoadNetwork> {
        Arc::new(generator::generate(&NetworkConfig::small(5)))
    }

    fn query(x0: f64) -> Trajectory {
        Trajectory::new(
            TrajId(0),
            (0..4)
                .map(|k| {
                    GpsPoint::new(
                        hris_geo::Point::new(x0 + k as f64 * 400.0, 120.0),
                        k as f64 * 120.0,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn handle_is_send_sync_static() {
        fn assert_owned<T: Send + Sync + 'static>() {}
        assert_owned::<EngineHandle>();
        assert_owned::<Arc<EngineHandle>>();
    }

    #[test]
    fn handle_matches_borrowed_engine() {
        let net = net();
        let hris = crate::Hris::new(
            &net,
            TrajectoryArchive::empty(),
            crate::HrisParams::default(),
        );
        let engine = crate::QueryEngine::new(&hris);
        let handle = EngineHandle::new(
            Arc::clone(&net),
            TrajectoryArchive::empty(),
            crate::HrisParams::default(),
        );
        let q = query(0.0);
        let borrowed = engine.infer_query(&q, 2);
        let owned = handle.infer_query(&q, 2);
        assert_eq!(borrowed.globals.len(), owned.globals.len());
        for (a, b) in borrowed.globals.iter().zip(&owned.globals) {
            assert_eq!(a.route, b.route);
            assert_eq!(a.log_score.to_bits(), b.log_score.to_bits());
        }
        assert_eq!(borrowed.outcome, owned.outcome);
    }

    #[test]
    fn handle_can_move_into_a_thread() {
        let handle = Arc::new(EngineHandle::new(
            net(),
            TrajectoryArchive::empty(),
            crate::HrisParams::default(),
        ));
        let h = Arc::clone(&handle);
        let out = std::thread::spawn(move || h.infer_routes(&query(0.0), 1))
            .join()
            .expect("worker thread");
        assert_eq!(out.len(), handle.infer_routes(&query(0.0), 1).len());
    }

    #[test]
    fn live_handle_follows_epochs() {
        let net = net();
        let mut writer = ArchiveWriter::new(TrajectoryArchive::empty());
        let handle = EngineHandle::live(
            Arc::clone(&net),
            writer.reader(),
            crate::HrisParams::default(),
            EngineConfig::default(),
        );
        assert_eq!(handle.epoch(), 0);
        let before = handle.infer_routes(&query(0.0), 1);

        writer.append(query(0.0)).unwrap();
        writer.publish();
        let _ = handle.infer_routes(&query(0.0), 1);
        assert_eq!(handle.epoch(), 1);
        assert_eq!(handle.current_snapshot().num_trajectories(), 1);
        assert!(!before.is_empty());
    }

    #[test]
    fn fixed_handle_ignores_later_publishes() {
        let net = net();
        let mut writer = ArchiveWriter::new(TrajectoryArchive::empty());
        let frozen = writer.snapshot();
        let handle = EngineHandle::from_snapshot(
            Arc::clone(&net),
            frozen,
            crate::HrisParams::default(),
            EngineConfig::default(),
        );
        writer.append(query(0.0)).unwrap();
        writer.publish();
        let _ = handle.infer_routes(&query(0.0), 1);
        assert_eq!(handle.epoch(), 0);
        assert_eq!(handle.current_snapshot().num_trajectories(), 0);
    }
}
