//! Scratch diagnostic for end-to-end inference quality (not shipped docs).

use hris::{Hris, HrisParams};
use hris_roadnet::{generator, NetworkConfig, Route};
use hris_traj::{resample_to_interval, SimConfig, Simulator, TrajId, Trajectory};
use std::collections::HashMap;

fn main() {
    let net = generator::generate(&NetworkConfig::default());
    println!(
        "net: {} nodes {} segs, extent {:?}",
        net.num_nodes(),
        net.num_segments(),
        net.bbox()
    );
    let mut sim = Simulator::new(
        &net,
        SimConfig {
            num_trips: 600,
            num_od_patterns: 10,
            min_trip_dist_m: 3000.0,
            seed: 13,
            ..SimConfig::default()
        },
    );
    let (archive, routes) = sim.generate_archive();
    println!(
        "archive: {} trips {} points",
        archive.num_trajectories(),
        archive.num_points()
    );
    let mut counts: HashMap<&Route, usize> = HashMap::new();
    for r in &routes {
        *counts.entry(r).or_default() += 1;
    }
    let (popular, pc) = counts.into_iter().max_by_key(|&(_, c)| c).unwrap();
    println!(
        "popular route: {} segs, {:.0} m, {} trips",
        popular.len(),
        popular.length(&net),
        pc
    );
    let pts = hris_traj::simulator::drive_route(&net, popular, 0.0, 20.0, 0.8).unwrap();
    let dense = Trajectory::new(TrajId(0), pts);
    let query = resample_to_interval(&dense, 180.0);
    println!(
        "query: {} points over {:.0} s",
        query.len(),
        query.duration()
    );

    let hris = Hris::new(&net, archive, HrisParams::default());
    let locals = hris.local_inference(&query);
    for (i, l) in locals.iter().enumerate() {
        println!(
            "pair {i}: {} refs ({} pts, density {:.0}/km2) -> {} routes [{}] (knn {} tn {} te {}->{} aug {})",
            l.refs.len(),
            l.refs.num_points(),
            l.stats.density,
            l.routes.len(),
            l.stats.algorithm,
            l.stats.knn_searches,
            l.stats.traverse_nodes,
            l.stats.traverse_edges_initial,
            l.stats.traverse_edges_final,
            l.stats.augmentation_links,
        );
        for (ri, r) in l.routes.iter().enumerate().take(4) {
            let f = hris::local::route_popularity(r, &l.edge_index, 0.05);
            println!(
                "   route {ri}: {} segs {:.0} m, pop {:.2}, cov vs truth {:.2}",
                r.len(),
                r.length(&net),
                f,
                r.common_length(popular, &net) / r.length(&net).max(1.0)
            );
        }
    }
    let (globals, _) = hris.infer_routes_detailed(&query, 3);
    for (gi, g) in globals.iter().enumerate() {
        let cov = g.route.common_length(popular, &net) / popular.length(&net);
        println!(
            "global {gi}: score {:.2}, len {:.0}, cov {:.2}, indices {:?}",
            g.log_score,
            g.route.length(&net),
            cov,
            g.local_indices
        );
    }
}
