//! The zero-overhead-when-disabled contract, enforced at the clock.
//!
//! Every timestamp the observability layer takes goes through the counted
//! clock [`hris_obs::clock`]. With observability *and* explain disabled
//! (the default configuration), a query must perform **zero** clock reads —
//! not "cheap" instrumentation, *none*: no timers, no span capture, no
//! trace-id mint, no audit rendering.
//!
//! This file is a dedicated test binary on purpose: the read counter is
//! process-global, so no test here may construct an instrumented engine.

use hris::{EngineConfig, EngineHandle, Hris, HrisParams, QueryEngine, QueryOutcome};
use hris_geo::Point;
use hris_obs::clock;
use hris_roadnet::{generator, NetworkConfig, RoadNetwork};
use hris_traj::{GpsPoint, SimConfig, Simulator, TrajId, Trajectory, TrajectoryArchive};
use std::sync::Arc;

fn net() -> RoadNetwork {
    generator::generate(&NetworkConfig::small(5))
}

fn archive(net: &RoadNetwork) -> TrajectoryArchive {
    let mut sim = Simulator::new(
        net,
        SimConfig {
            num_trips: 60,
            num_od_patterns: 5,
            min_trip_dist_m: 400.0,
            seed: 7,
            ..SimConfig::default()
        },
    );
    sim.generate_archive().0
}

fn query(x0: f64, n: usize) -> Trajectory {
    Trajectory::new(
        TrajId(1),
        (0..n)
            .map(|i| {
                GpsPoint::new(
                    Point::new(x0 + i as f64 * 400.0, 150.0 + i as f64 * 60.0),
                    i as f64 * 120.0,
                )
            })
            .collect(),
    )
}

#[test]
fn disabled_engine_reads_the_clock_zero_times() {
    let net = net();
    let archive = archive(&net);
    let hris = Hris::new(&net, archive, HrisParams::default());
    // The default configuration: observability off, explain off.
    let engine = QueryEngine::with_config(&hris, EngineConfig::default());
    let queries: Vec<Trajectory> = (0..4).map(|i| query(200.0 + i as f64 * 300.0, 4)).collect();

    let before = clock::reads();
    for q in &queries {
        let r = engine.infer_query(q, 2);
        assert!(!matches!(r.outcome, QueryOutcome::Rejected { .. }));
    }
    let _ = engine.infer_batch_detailed(&queries, 2);
    // Degradation paths too: a dirty-but-repairable query and a rejected one.
    let mut dirty = query(500.0, 4);
    dirty.points[2].pos = Point::new(f64::NAN, 0.0);
    let _ = engine.infer_query(&dirty, 2);
    let _ = engine.infer_query(&Trajectory::new(TrajId(2), Vec::new()), 2);
    assert_eq!(
        clock::reads() - before,
        0,
        "a disabled engine must never read the clock"
    );
}

#[test]
fn disabled_live_handle_reads_the_clock_zero_times() {
    let net = Arc::new(net());
    let archive = archive(&net);
    let handle = EngineHandle::with_config(
        Arc::clone(&net),
        archive,
        HrisParams::default(),
        EngineConfig::default(),
    );
    let queries: Vec<Trajectory> = (0..3).map(|i| query(300.0 + i as f64 * 250.0, 4)).collect();

    let before = clock::reads();
    for q in &queries {
        let _ = handle.infer_query(q, 2);
    }
    let _ = handle.infer_batch(&queries, 2);
    assert_eq!(
        clock::reads() - before,
        0,
        "a disabled handle must never read the clock"
    );
}
