//! The engine's core invariant: scheduling and caching never change any
//! inferred route or score. Every execution mode must return results
//! byte-identical to the plain sequential [`Hris`] pipeline.

use hris::{EngineConfig, ExecMode, Hris, HrisParams, QueryEngine, ScoredRoute};
use hris_roadnet::{generator, NetworkConfig};
use hris_traj::{resample_to_interval, SimConfig, Simulator, TrajId, Trajectory};

/// A seeded scenario with enough archive data that queries exercise both the
/// reference-driven path and the shortest-path fallback.
fn scenario() -> (hris_roadnet::RoadNetwork, Hris<'static>, Vec<Trajectory>) {
    // Leak the network so `Hris<'static>` can borrow it; fine in a test.
    let net: &'static _ = Box::leak(Box::new(generator::generate(&NetworkConfig::small(8))));
    let mut sim = Simulator::new(
        net,
        SimConfig {
            num_trips: 250,
            num_od_patterns: 10,
            min_trip_dist_m: 800.0,
            seed: 13,
            ..SimConfig::default()
        },
    );
    let (archive, routes) = sim.generate_archive();
    let mut queries = Vec::new();
    for (i, r) in routes.iter().step_by(routes.len() / 4).take(4).enumerate() {
        let pts = hris_traj::simulator::drive_route(net, r, 0.0, 20.0, 0.8).unwrap();
        queries.push(resample_to_interval(
            &Trajectory::new(TrajId(i as u32), pts),
            240.0,
        ));
    }
    // Duplicate a query so the batch revisits identical positions and the
    // caches get real hit traffic.
    let dup = queries[0].clone();
    queries.push(dup);
    let hris = Hris::new(net, archive, HrisParams::default());
    (net.clone(), hris, queries)
}

fn assert_same(kind: &str, a: &[ScoredRoute], b: &[ScoredRoute]) {
    assert_eq!(a.len(), b.len(), "{kind}: route count differs");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.route, y.route, "{kind}: route {i} differs");
        assert!(
            x.log_score == y.log_score,
            "{kind}: score {i} differs ({} vs {})",
            x.log_score,
            y.log_score,
        );
    }
}

#[test]
fn all_execution_modes_match_sequential_hris() {
    let (_net, hris, queries) = scenario();
    let k = 3;

    let baseline: Vec<Vec<ScoredRoute>> = queries.iter().map(|q| hris.infer_routes(q, k)).collect();

    // Engine in pure-sequential, cache-free mode.
    let seq = QueryEngine::with_config(&hris, EngineConfig::sequential());
    for (q, want) in queries.iter().zip(&baseline) {
        assert_same("sequential engine", &seq.infer_routes(q, k), want);
    }

    // Pair-parallel with both caches.
    let par = QueryEngine::new(&hris);
    assert_eq!(par.config().mode, ExecMode::PairParallel);
    for (q, want) in queries.iter().zip(&baseline) {
        assert_same("pair-parallel engine", &par.infer_routes(q, k), want);
    }

    // Batch fan-out over the same shared caches.
    let batch = QueryEngine::new(&hris);
    let got = batch.infer_batch(&queries, k);
    assert_eq!(got.len(), baseline.len());
    for (i, (g, want)) in got.iter().zip(&baseline).enumerate() {
        assert_same(&format!("batch query {i}"), g, want);
    }

    // The duplicated query plus shared positions must have produced real
    // cache traffic — and none of it changed a single byte above.
    let stats = batch.cache_stats();
    assert!(
        stats.candidate_hits > 0,
        "expected candidate memo hits, got {stats:?}"
    );
}

/// S1 — determinism under cache pressure: a shortest-path cache so small it
/// evicts on nearly every insert, plus a candidate memo flooded by every
/// distinct query position, must still return routes byte-identical to the
/// cache-free sequential engine. Eviction changes only *when* work is
/// recomputed, never what it computes.
#[test]
fn cache_pressure_does_not_change_results() {
    let (_net, hris, queries) = scenario();
    let k = 3;

    let uncached = QueryEngine::with_config(&hris, EngineConfig::sequential());
    let baseline: Vec<Vec<ScoredRoute>> = queries
        .iter()
        .map(|q| uncached.infer_routes(q, k))
        .collect();

    // Capacity 1: each of the cache's shards holds a single entry, so the
    // workload thrashes it (every reuse across a different pair evicts).
    let pressured = QueryEngine::with_config(
        &hris,
        EngineConfig {
            sp_cache_capacity: 1,
            ..EngineConfig::default()
        },
    );
    // Two passes: the second runs against a memo already saturated with
    // every position of the workload, so it is served almost entirely from
    // cache — and must still match.
    for pass in 0..2 {
        let got = pressured.infer_batch(&queries, k);
        for (i, (g, want)) in got.iter().zip(&baseline).enumerate() {
            assert_same(&format!("pressured pass {pass} query {i}"), g, want);
        }
    }
    let stats = pressured.cache_stats();
    assert!(
        stats.candidate_hits > 0,
        "pass 2 must hit the saturated memo, got {stats:?}"
    );

    // The dense archive above rarely needs the shortest-path fallback, so
    // pressure the SP cache separately: an empty archive routes *every* pair
    // through it. Capacity 1 per shard → constant eviction; results must
    // still match the cache-free engine.
    let net2: &'static _ = Box::leak(Box::new(generator::generate(&NetworkConfig::small(5))));
    let empty = Hris::new(
        net2,
        hris_traj::TrajectoryArchive::empty(),
        HrisParams::default(),
    );
    let uncached2 = QueryEngine::with_config(&empty, EngineConfig::sequential());
    let sp_pressured = QueryEngine::with_config(
        &empty,
        EngineConfig {
            sp_cache_capacity: 1,
            ..EngineConfig::default()
        },
    );
    let want2: Vec<Vec<ScoredRoute>> = queries
        .iter()
        .map(|q| uncached2.infer_routes(q, k))
        .collect();
    for pass in 0..2 {
        let got = sp_pressured.infer_batch(&queries, k);
        for (i, (g, w)) in got.iter().zip(&want2).enumerate() {
            assert_same(&format!("sp-pressured pass {pass} query {i}"), g, w);
        }
    }
    // The SP fallback now runs through the network-level shortest-path
    // oracle; the baseline engine already warmed its trees, so the
    // pressured engine's demoted route cache may legitimately see zero
    // traffic. The oracle's own counters prove the fallback ran.
    let oracle2 = net2.sp_oracle();
    assert!(
        oracle2.hits() + oracle2.misses() > 0,
        "empty archive must exercise the SP fallback, got {}/{}",
        oracle2.hits(),
        oracle2.misses()
    );

    // Same pressure with full instrumentation and tracing on: metrics must
    // not move a byte either.
    let observed = QueryEngine::with_config(
        &hris,
        EngineConfig::builder()
            .sp_cache_capacity(1)
            .observability(true)
            .build()
            .unwrap(),
    );
    let got = observed.infer_batch(&queries, k);
    for (i, (g, want)) in got.iter().zip(&baseline).enumerate() {
        assert_same(&format!("observed pressured query {i}"), g, want);
    }

    // Span capture at 1-in-1 (every query carries a live span tree) is the
    // heaviest instrumentation the engine has; still not a byte of drift.
    let spanned = QueryEngine::with_config(
        &hris,
        EngineConfig::builder()
            .sp_cache_capacity(1)
            .observability(true)
            .span_sampling(1)
            .build()
            .unwrap(),
    );
    let got = spanned.infer_batch(&queries, k);
    for (i, (g, want)) in got.iter().zip(&baseline).enumerate() {
        assert_same(&format!("spanned pressured query {i}"), g, want);
    }
    let obs = spanned.observability().unwrap();
    assert!(
        obs.traces().iter().all(|t| !t.spans.is_empty()),
        "1-in-1 sampling must attach a span tree to every trace"
    );
}

#[test]
fn detailed_outputs_match_across_modes() {
    let (_net, hris, queries) = scenario();
    let k = 2;
    let engine = QueryEngine::new(&hris);
    for q in &queries {
        let (g_hris, s_hris) = hris.infer_routes_detailed(q, k);
        let (g_eng, s_eng) = engine.infer_routes_detailed(q, k);
        assert_eq!(g_hris.len(), g_eng.len());
        for (a, b) in g_hris.iter().zip(&g_eng) {
            assert_eq!(a.route, b.route);
            assert!(a.log_score == b.log_score);
            assert_eq!(a.local_indices, b.local_indices);
        }
        assert_eq!(s_hris.len(), s_eng.len());
    }
}
