//! The engine's core invariant: scheduling and caching never change any
//! inferred route or score. Every execution mode must return results
//! byte-identical to the plain sequential [`Hris`] pipeline.

use hris::{EngineConfig, ExecMode, Hris, HrisParams, QueryEngine, ScoredRoute};
use hris_roadnet::{generator, NetworkConfig};
use hris_traj::{resample_to_interval, SimConfig, Simulator, TrajId, Trajectory};

/// A seeded scenario with enough archive data that queries exercise both the
/// reference-driven path and the shortest-path fallback.
fn scenario() -> (hris_roadnet::RoadNetwork, Hris<'static>, Vec<Trajectory>) {
    // Leak the network so `Hris<'static>` can borrow it; fine in a test.
    let net: &'static _ = Box::leak(Box::new(generator::generate(&NetworkConfig::small(8))));
    let mut sim = Simulator::new(
        net,
        SimConfig {
            num_trips: 250,
            num_od_patterns: 10,
            min_trip_dist_m: 800.0,
            seed: 13,
            ..SimConfig::default()
        },
    );
    let (archive, routes) = sim.generate_archive();
    let mut queries = Vec::new();
    for (i, r) in routes.iter().step_by(routes.len() / 4).take(4).enumerate() {
        let pts = hris_traj::simulator::drive_route(net, r, 0.0, 20.0, 0.8).unwrap();
        queries.push(resample_to_interval(
            &Trajectory::new(TrajId(i as u32), pts),
            240.0,
        ));
    }
    // Duplicate a query so the batch revisits identical positions and the
    // caches get real hit traffic.
    let dup = queries[0].clone();
    queries.push(dup);
    let hris = Hris::new(net, archive, HrisParams::default());
    (net.clone(), hris, queries)
}

fn assert_same(kind: &str, a: &[ScoredRoute], b: &[ScoredRoute]) {
    assert_eq!(a.len(), b.len(), "{kind}: route count differs");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.route, y.route, "{kind}: route {i} differs");
        assert!(
            x.log_score == y.log_score,
            "{kind}: score {i} differs ({} vs {})",
            x.log_score,
            y.log_score,
        );
    }
}

#[test]
fn all_execution_modes_match_sequential_hris() {
    let (_net, hris, queries) = scenario();
    let k = 3;

    let baseline: Vec<Vec<ScoredRoute>> = queries.iter().map(|q| hris.infer_routes(q, k)).collect();

    // Engine in pure-sequential, cache-free mode.
    let seq = QueryEngine::with_config(&hris, EngineConfig::sequential());
    for (q, want) in queries.iter().zip(&baseline) {
        assert_same("sequential engine", &seq.infer_routes(q, k), want);
    }

    // Pair-parallel with both caches.
    let par = QueryEngine::new(&hris);
    assert_eq!(par.config().mode, ExecMode::PairParallel);
    for (q, want) in queries.iter().zip(&baseline) {
        assert_same("pair-parallel engine", &par.infer_routes(q, k), want);
    }

    // Batch fan-out over the same shared caches.
    let batch = QueryEngine::new(&hris);
    let got = batch.infer_batch(&queries, k);
    assert_eq!(got.len(), baseline.len());
    for (i, (g, want)) in got.iter().zip(&baseline).enumerate() {
        assert_same(&format!("batch query {i}"), g, want);
    }

    // The duplicated query plus shared positions must have produced real
    // cache traffic — and none of it changed a single byte above.
    let stats = batch.cache_stats();
    assert!(
        stats.candidate_hits > 0,
        "expected candidate memo hits, got {stats:?}"
    );
}

#[test]
fn detailed_outputs_match_across_modes() {
    let (_net, hris, queries) = scenario();
    let k = 2;
    let engine = QueryEngine::new(&hris);
    for q in &queries {
        let (g_hris, s_hris) = hris.infer_routes_detailed(q, k);
        let (g_eng, s_eng) = engine.infer_routes_detailed(q, k);
        assert_eq!(g_hris.len(), g_eng.len());
        for (a, b) in g_hris.iter().zip(&g_eng) {
            assert_eq!(a.route, b.route);
            assert!(a.log_score == b.log_score);
            assert_eq!(a.local_indices, b.local_indices);
        }
        assert_eq!(s_hris.len(), s_eng.len());
    }
}
