//! Property-based tests for the HRIS core: reference-search postconditions
//! (Definitions 6–7), popularity-scoring bounds, and K-GRI vs the
//! brute-force oracle on randomly generated local-route universes.

use hris::local::{route_popularity, LocalInferenceResult, LocalStats, RefEdgeIndex};
use hris::reference::{search_references, RefKind, RefSearchConfig, RefTrajectory, ReferenceSet};
use hris::{PaperScorer, PopularityModel, RouteScorer, ScoringCtx};
use hris_geo::Point;
use hris_roadnet::{generator, NetworkConfig, Route, SegmentId};
use hris_traj::{GpsPoint, TrajId, Trajectory, TrajectoryArchive};
use proptest::prelude::*;
use std::collections::HashSet;

// ---------------------------------------------------------------- helpers

fn test_net() -> hris_roadnet::RoadNetwork {
    generator::generate(&NetworkConfig {
        blocks_x: 4,
        blocks_y: 4,
        removal_frac: 0.0,
        oneway_frac: 0.0,
        jitter_frac: 0.0,
        curve_frac: 0.0,
        ..NetworkConfig::small(3)
    })
}

/// Strategy: a random time-ordered trajectory inside a 4 km box.
fn trajectory(max_pts: usize) -> impl Strategy<Value = Trajectory> {
    prop::collection::vec(
        (0.0..4_000.0f64, 0.0..4_000.0f64, 1.0..120.0f64),
        2..max_pts,
    )
    .prop_map(|steps| {
        let mut t = 0.0;
        let pts = steps
            .into_iter()
            .map(|(x, y, dt)| {
                t += dt;
                GpsPoint::new(Point::new(x, y), t)
            })
            .collect();
        Trajectory::new(TrajId(0), pts)
    })
}

/// Strategy: a universe of local-inference results with synthetic coverage.
/// Produces `pairs` pairs each holding 1..=4 single-segment routes.
fn locals_strategy() -> impl Strategy<Value = Vec<LocalInferenceResult>> {
    let pair = prop::collection::vec(
        (
            0u32..40,                               // segment id
            prop::collection::vec(0usize..6, 0..5), // covering refs
            prop::collection::vec(0u32..10, 1..3),  // source traj ids
        ),
        1..5,
    );
    prop::collection::vec(pair, 1..5).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|routes| {
                let mut pairs_list: Vec<(SegmentId, usize)> = Vec::new();
                let mut refs: Vec<RefTrajectory> = Vec::new();
                let mut route_list = Vec::new();
                for (seg, cover, sources) in routes {
                    let seg = SegmentId(seg);
                    for &r in &cover {
                        while refs.len() <= r {
                            refs.push(RefTrajectory {
                                kind: RefKind::Simple,
                                sources: sources.iter().map(|&s| TrajId(s)).collect(),
                                points: vec![GpsPoint::new(Point::ORIGIN, 0.0)],
                            });
                        }
                        pairs_list.push((seg, r));
                    }
                    route_list.push(Route::new(vec![seg]));
                }
                LocalInferenceResult {
                    routes: route_list,
                    edge_index: RefEdgeIndex::from_pairs(pairs_list),
                    refs: ReferenceSet { refs },
                    stats: LocalStats::default(),
                }
            })
            .collect()
    })
}

// ------------------------------------------------------------------ tests

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every simple reference returned by the search satisfies the letter
    /// of Definition 6: endpoints within φ, direction preserved, and each
    /// point inside the speed-feasible ellipse.
    #[test]
    fn simple_references_satisfy_definition_6(
        trajs in prop::collection::vec(trajectory(12), 1..8),
        qx in 500.0..3_500.0f64,
        qy in 500.0..3_500.0f64,
        dx in -2_000.0..2_000.0f64,
        dy in -2_000.0..2_000.0f64,
        dt in 30.0..900.0f64,
        phi in 50.0..800.0f64,
    ) {
        let archive = TrajectoryArchive::new(trajs);
        let qi = Point::new(qx, qy);
        let qj = Point::new(qx + dx, qy + dy);
        let v_max = 25.0;
        let cfg = RefSearchConfig {
            splice_when_simple_below: 0, // simple only
            ..RefSearchConfig::new(phi, 0.0)
        };
        let refs = search_references(&archive, qi, qj, dt, v_max, &cfg);
        let budget = dt * v_max;
        for r in &refs.refs {
            prop_assert_eq!(r.kind, RefKind::Simple);
            prop_assert!(!r.points.is_empty());
            // Conditions 1–2 (nearest points within φ).
            prop_assert!(r.points[0].pos.dist(qi) <= phi + 1e-9);
            prop_assert!(r.points.last().unwrap().pos.dist(qj) <= phi + 1e-9);
            // Condition 3 (speed feasibility) for every point.
            for p in &r.points {
                prop_assert!(p.pos.dist(qi) + p.pos.dist(qj) <= budget + 1e-9);
            }
            // Time order preserved (direction requirement).
            prop_assert!(r.points.windows(2).all(|w| w[0].t <= w[1].t));
        }
    }

    /// Spliced references also satisfy Definition 6's conditions and are
    /// stitched at a pair within the splicing threshold.
    #[test]
    fn spliced_references_satisfy_definition_7(
        trajs in prop::collection::vec(trajectory(10), 2..8),
        dt in 100.0..900.0f64,
        eps in 50.0..500.0f64,
    ) {
        let archive = TrajectoryArchive::new(trajs);
        let qi = Point::new(800.0, 2_000.0);
        let qj = Point::new(3_200.0, 2_000.0);
        let cfg = RefSearchConfig {
            splice_when_simple_below: usize::MAX,
            ..RefSearchConfig::new(600.0, eps)
        };
        let refs = search_references(&archive, qi, qj, dt, 25.0, &cfg);
        let budget = dt * 25.0;
        for r in refs.refs.iter().filter(|r| r.kind == RefKind::Spliced) {
            prop_assert_eq!(r.sources.len(), 2);
            prop_assert_ne!(r.sources[0], r.sources[1]);
            prop_assert!(r.points.len() >= 2);
            for p in &r.points {
                prop_assert!(p.pos.dist(qi) + p.pos.dist(qj) <= budget + 1e-9);
            }
            // Some consecutive pair must be the splice joint (≤ eps apart);
            // all genuine same-trajectory steps have arbitrary spacing, so
            // we check that at least one admissible joint exists.
            let has_joint = r
                .points
                .windows(2)
                .any(|w| w[0].pos.dist(w[1].pos) <= eps + 1e-9);
            prop_assert!(has_joint);
        }
    }

    /// The per-pair cap really caps, keeping the nearest-endpoint refs.
    #[test]
    fn reference_cap_is_respected(
        trajs in prop::collection::vec(trajectory(10), 1..12),
        cap in 1usize..6,
    ) {
        let archive = TrajectoryArchive::new(trajs);
        let cfg = RefSearchConfig {
            max_refs: cap,
            splice_when_simple_below: usize::MAX,
            ..RefSearchConfig::new(1_500.0, 200.0)
        };
        let refs = search_references(
            &archive,
            Point::new(1_000.0, 1_000.0),
            Point::new(3_000.0, 3_000.0),
            600.0,
            25.0,
            &cfg,
        );
        prop_assert!(refs.len() <= cap);
    }

    /// Popularity is non-negative, zero without coverage, and increases
    /// with added coverage on the same route.
    #[test]
    fn popularity_bounds_and_monotonicity(
        cover_a in prop::collection::vec(0usize..8, 0..6),
        cover_b in prop::collection::vec(0usize..8, 0..6),
    ) {
        let seg = SegmentId(0);
        let route = Route::new(vec![seg]);
        let mk = |cover: &[usize]| RefEdgeIndex::from_pairs(cover.iter().map(|&r| (seg, r)));
        let fa = route_popularity(&route, &mk(&cover_a), 0.05);
        let fb = route_popularity(&route, &mk(&cover_b), 0.05);
        prop_assert!(fa >= 0.0 && fb >= 0.0);
        if cover_a.is_empty() {
            prop_assert_eq!(fa, 0.0);
        }
        let ca: HashSet<usize> = cover_a.iter().copied().collect();
        let cb: HashSet<usize> = cover_b.iter().copied().collect();
        if ca.is_superset(&cb) && !cb.is_empty() {
            prop_assert!(fa >= fb - 1e-12);
        }
    }

    /// K-GRI agrees with the brute-force oracle on random universes, for
    /// every K.
    #[test]
    fn kgri_equals_brute_force(locals in locals_strategy(), k in 1usize..6) {
        let net = test_net();
        let scorer = PaperScorer::new(0.05, PopularityModel::ScaleFree);
        let sctx = ScoringCtx::new(&net, &locals, k);
        let dp = scorer.top_k(&sctx);
        let bf = scorer.top_k_brute_force(&sctx);
        prop_assert_eq!(dp.len(), bf.len());
        for (d, b) in dp.iter().zip(bf.iter()) {
            prop_assert!((d.log_score - b.log_score).abs() < 1e-9,
                "dp {} vs bf {}", d.log_score, b.log_score);
        }
        // Non-increasing scores.
        for w in dp.windows(2) {
            prop_assert!(w[0].log_score >= w[1].log_score - 1e-12);
        }
        // Output size bound: min(k, total combinations).
        let combos: usize = locals.iter().map(|l| l.routes.len()).product();
        prop_assert_eq!(dp.len(), k.min(combos));
    }

    /// Every K-GRI result indexes a real local route in every pair.
    #[test]
    fn kgri_indices_are_valid(locals in locals_strategy(), k in 1usize..4) {
        let net = test_net();
        let scorer = PaperScorer::new(0.05, PopularityModel::ScaleFree);
        for g in scorer.top_k(&ScoringCtx::new(&net, &locals, k)) {
            prop_assert_eq!(g.local_indices.len(), locals.len());
            for (i, &j) in g.local_indices.iter().enumerate() {
                prop_assert!(j < locals[i].routes.len());
            }
        }
    }
}
