//! Dirty-data robustness of the [`QueryEngine`]: the seeded fault corpus
//! must never panic, every query must yield a [`QueryOutcome`], clean
//! inputs must stay byte-identical to the validation-off engine (and the
//! plain [`Hris`] pipeline), and the outcome counters must account exactly.

use hris::{EngineConfig, Hris, HrisParams, QueryEngine, QueryOutcome, RejectReason, ScoredRoute};
use hris_geo::Point;
use hris_obs::MetricsRegistry;
use hris_roadnet::{generator, NetworkConfig};
use hris_traj::{
    fault_corpus, resample_to_interval, FaultKind, GpsPoint, SimConfig, Simulator, TrajId,
    Trajectory,
};
use std::sync::Arc;

/// A seeded scenario with archive data, plus clean on-map queries for the
/// injector to corrupt.
fn scenario() -> (Hris<'static>, Vec<Trajectory>) {
    // Leak the network so `Hris<'static>` can borrow it; fine in a test.
    let net: &'static _ = Box::leak(Box::new(generator::generate(&NetworkConfig::small(8))));
    let mut sim = Simulator::new(
        net,
        SimConfig {
            num_trips: 250,
            num_od_patterns: 10,
            min_trip_dist_m: 800.0,
            seed: 13,
            ..SimConfig::default()
        },
    );
    let (archive, routes) = sim.generate_archive();
    let mut queries = Vec::new();
    for (i, r) in routes.iter().step_by(routes.len() / 4).take(4).enumerate() {
        let pts = hris_traj::simulator::drive_route(net, r, 0.0, 20.0, 0.8).unwrap();
        queries.push(resample_to_interval(
            &Trajectory::new(TrajId(i as u32), pts),
            240.0,
        ));
    }
    (Hris::new(net, archive, HrisParams::default()), queries)
}

fn outcomes(results: &[hris::QueryResult]) -> Vec<&'static str> {
    results.iter().map(|r| r.outcome.label()).collect()
}

#[test]
fn hundred_case_fault_corpus_never_panics_and_is_deterministic() {
    let (hris, clean) = scenario();
    let engine = QueryEngine::new(&hris);

    // 100 cases cycle all 8 fault kinds — every kind represented.
    let corpus = fault_corpus(42, &clean, 100);
    let kinds: std::collections::HashSet<_> = corpus.iter().map(|(k, _)| *k).collect();
    assert_eq!(kinds.len(), FaultKind::ALL.len());

    let queries: Vec<Trajectory> = corpus.iter().map(|(_, t)| t.clone()).collect();
    let results = engine.infer_batch_detailed(&queries, 3);
    assert_eq!(results.len(), 100, "every query yields a QueryResult");

    // Rejections are exactly the queries with nothing usable; everything
    // else produced a verdict without panicking.
    for ((kind, _), r) in corpus.iter().zip(&results) {
        if *kind == FaultKind::Empty {
            assert_eq!(
                r.outcome,
                QueryOutcome::Rejected {
                    reason: RejectReason::EmptyQuery
                },
                "empty inputs must be rejected"
            );
            assert!(r.globals.is_empty());
        }
        if matches!(r.outcome, QueryOutcome::Rejected { .. }) {
            assert!(r.globals.is_empty() && r.stats.is_empty());
        }
    }

    // Fixed seed → identical outcomes and identical routes on a re-run.
    let corpus2 = fault_corpus(42, &clean, 100);
    let queries2: Vec<Trajectory> = corpus2.into_iter().map(|(_, t)| t).collect();
    let results2 = engine.infer_batch_detailed(&queries2, 3);
    assert_eq!(outcomes(&results), outcomes(&results2));
    for (a, b) in results.iter().zip(&results2) {
        assert_eq!(a.globals.len(), b.globals.len());
        for (x, y) in a.globals.iter().zip(&b.globals) {
            assert_eq!(x.route, y.route);
            assert!(x.log_score == y.log_score);
        }
    }
}

#[test]
fn clean_inputs_are_byte_identical_across_validation_settings() {
    let (hris, clean) = scenario();
    let validated = QueryEngine::new(&hris);
    assert!(validated.config().validation.enabled);
    let unvalidated = QueryEngine::with_config(&hris, EngineConfig::unvalidated());

    for q in &clean {
        let with: Vec<ScoredRoute> = validated.infer_routes(q, 3);
        let without: Vec<ScoredRoute> = unvalidated.infer_routes(q, 3);
        let plain: Vec<ScoredRoute> = hris.infer_routes(q, 3);
        assert_eq!(with.len(), without.len());
        assert_eq!(with.len(), plain.len());
        for ((a, b), c) in with.iter().zip(&without).zip(&plain) {
            assert_eq!(a.route, b.route, "validation screen changed a route");
            assert!(
                a.log_score == b.log_score,
                "validation screen moved a score"
            );
            assert_eq!(a.route, c.route, "engine diverged from plain Hris");
            assert!(a.log_score == c.log_score);
        }
        // And the screen classified them as clean.
        assert_eq!(validated.infer_query(q, 3).outcome, QueryOutcome::Ok);
    }
}

#[test]
fn per_fault_outcomes_follow_the_repair_ladder() {
    let (hris, clean) = scenario();
    let engine = QueryEngine::new(&hris);
    let base = &clean[0];

    // NaN coordinates: repaired (the poisoned point is dropped), never Ok.
    let mut pts = base.points.clone();
    pts[1].pos = Point::new(f64::NAN, pts[1].pos.y);
    let nan_query = Trajectory::from_unchecked(TrajId(90), pts);
    let r = engine.infer_query(&nan_query, 3);
    match r.outcome {
        QueryOutcome::Repaired { repairs } | QueryOutcome::Degraded { repairs, .. } => {
            assert_eq!(repairs.dropped_non_finite, 1);
        }
        other => panic!("NaN query must be repaired, got {other:?}"),
    }

    // Out-of-order timestamps: repaired by re-sorting, no point dropped.
    let mut pts = base.points.clone();
    let n = pts.len();
    pts.swap(1, n - 2);
    let scrambled = Trajectory::from_unchecked(TrajId(91), pts);
    let r = engine.infer_query(&scrambled, 3);
    match r.outcome {
        QueryOutcome::Repaired { repairs } | QueryOutcome::Degraded { repairs, .. } => {
            assert!(repairs.sorted);
            assert_eq!(repairs.points_dropped(), 0);
        }
        other => panic!("scrambled query must be repaired, got {other:?}"),
    }
    // Re-sorting restores the clean point set, so the answer matches the
    // clean query's byte for byte.
    let want = engine.infer_query(base, 3);
    assert_eq!(r.globals.len(), want.globals.len());
    for (a, b) in r.globals.iter().zip(&want.globals) {
        assert_eq!(a.route, b.route);
        assert!(a.log_score == b.log_score);
    }

    // All-garbage input: rejected with NoUsablePoints.
    let garbage = Trajectory::from_unchecked(
        TrajId(92),
        vec![
            GpsPoint::new(Point::new(f64::NAN, 0.0), 0.0),
            GpsPoint::new(Point::new(5.0e8, 0.0), 10.0),
        ],
    );
    assert_eq!(
        engine.infer_query(&garbage, 3).outcome,
        QueryOutcome::Rejected {
            reason: RejectReason::NoUsablePoints
        }
    );

    // Empty input: rejected with EmptyQuery.
    assert_eq!(
        engine
            .infer_query(&Trajectory::new(TrajId(93), vec![]), 3)
            .outcome,
        QueryOutcome::Rejected {
            reason: RejectReason::EmptyQuery
        }
    );

    // Duplicate timestamps at different positions are valid data, not
    // corruption — the screen must pass them through untouched.
    let mut pts = base.points.clone();
    let t0 = pts[0].t;
    pts.insert(
        1,
        GpsPoint::new(Point::new(pts[0].pos.x + 5.0, pts[0].pos.y), t0),
    );
    let dup = Trajectory::new(TrajId(94), pts);
    assert_eq!(engine.infer_query(&dup, 3).outcome, QueryOutcome::Ok);
}

#[test]
fn outcome_counters_account_exactly() {
    let (hris, clean) = scenario();
    let registry = Arc::new(MetricsRegistry::new());
    let engine = QueryEngine::with_registry(&hris, EngineConfig::default(), Arc::clone(&registry));

    let corpus = fault_corpus(7, &clean, 32);
    let queries: Vec<Trajectory> = corpus.into_iter().map(|(_, t)| t).collect();
    let results = engine.infer_batch_detailed(&queries, 3);

    let count = |label: &str| {
        results
            .iter()
            .filter(|r| r.outcome.label() == label)
            .count() as u64
    };
    let dropped: u64 = results
        .iter()
        .map(|r| match r.outcome {
            QueryOutcome::Repaired { repairs } | QueryOutcome::Degraded { repairs, .. } => {
                repairs.points_dropped() as u64
            }
            _ => 0,
        })
        .sum();

    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("hris_engine_queries_total"),
        Some(queries.len() as u64),
        "every query counted exactly once"
    );
    assert_eq!(
        snap.counter("hris_engine_repaired_total"),
        Some(count("repaired") + count("degraded")),
        "degraded queries are repaired queries too"
    );
    assert_eq!(
        snap.counter("hris_engine_degraded_total"),
        Some(count("degraded"))
    );
    assert_eq!(
        snap.counter("hris_engine_rejected_total"),
        Some(count("rejected"))
    );
    assert_eq!(
        snap.counter("hris_engine_points_dropped_total"),
        Some(dropped)
    );
    // 32 cases cycle 8 kinds 4× — the 4 injected empties alone guarantee
    // rejection traffic.
    assert!(count("rejected") >= 4);
}

#[test]
fn outcome_json_round_trips() {
    let (hris, clean) = scenario();
    let engine = QueryEngine::new(&hris);
    let corpus = fault_corpus(3, &clean, 16);
    for (_, q) in &corpus {
        let outcome = engine.infer_query(q, 2).outcome;
        let json = serde_json::to_string(&outcome).unwrap();
        let back: QueryOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, outcome, "round-trip of {json}");
    }
}
