//! Load-shed behaviour of [`EngineHandle`] admission control: a full
//! waiting room turns into `Rejected { Overloaded }` (never a queue that
//! grows without bound), shed queries land in the SLO burn partition
//! exactly once, the `hris_admission_*` gauges drain back to zero after
//! the burst, and `/healthz` degrades to 503 while the gate is saturated
//! and recovers on its own.

use hris::{EngineConfig, EngineHandle, HrisParams, QueryOutcome, RejectReason};
use hris_obs::{Admission, MetricsRegistry};
use hris_roadnet::{generator, NetworkConfig, RoadNetwork};
use hris_traj::{ArchiveSnapshot, GpsPoint, TrajId, Trajectory, TrajectoryArchive};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn net() -> Arc<RoadNetwork> {
    Arc::new(generator::generate(&NetworkConfig::small(5)))
}

fn query(x0: f64) -> Trajectory {
    Trajectory::new(
        TrajId(0),
        (0..4)
            .map(|k| {
                GpsPoint::new(
                    hris_geo::Point::new(x0 + k as f64 * 400.0, 120.0),
                    k as f64 * 120.0,
                )
            })
            .collect(),
    )
}

fn handle_with_gate(
    max_inflight: usize,
    max_queued: usize,
) -> (Arc<EngineHandle>, Arc<MetricsRegistry>) {
    let registry = Arc::new(MetricsRegistry::new());
    let cfg = EngineConfig::builder()
        .observability(true)
        .admission(max_inflight, max_queued)
        .build()
        .unwrap();
    let handle = Arc::new(EngineHandle::from_snapshot_with_registry(
        net(),
        Arc::new(ArchiveSnapshot::new(0, TrajectoryArchive::empty())),
        HrisParams::default(),
        cfg,
        Arc::clone(&registry),
    ));
    (handle, registry)
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn full_waiting_room_sheds_with_overloaded() {
    let (handle, registry) = handle_with_gate(1, 0);
    let gate = handle.admission_gate().expect("gate configured");

    // Occupy the only execution slot out-of-band; with a zero-size waiting
    // room the next query must shed immediately rather than block.
    let permit = match gate.admit() {
        Admission::Admitted(p) => p,
        Admission::Shed => panic!("idle gate must admit"),
    };
    let shed = handle.infer_query(&query(0.0), 2);
    assert!(
        matches!(
            shed.outcome,
            QueryOutcome::Rejected {
                reason: RejectReason::Overloaded
            }
        ),
        "expected Overloaded rejection, got {:?}",
        shed.outcome
    );
    assert!(shed.globals.is_empty());

    let snap = registry.snapshot();
    assert_eq!(snap.counter("hris_engine_shed_total"), Some(1));
    assert_eq!(snap.counter("hris_engine_rejected_total"), Some(1));

    // Slot freed: the same query is admitted and runs to completion.
    drop(permit);
    let ok = handle.infer_query(&query(0.0), 2);
    assert!(
        !matches!(
            ok.outcome,
            QueryOutcome::Rejected {
                reason: RejectReason::Overloaded
            }
        ),
        "query after permit release must not shed, got {:?}",
        ok.outcome
    );
    assert_eq!(
        registry.snapshot().counter("hris_engine_shed_total"),
        Some(1)
    );
}

#[test]
fn shed_queries_partition_into_slo_burn_exactly() {
    let (handle, registry) = handle_with_gate(1, 0);
    let gate = handle.admission_gate().unwrap();

    // A mix of served and shed traffic.
    for i in 0..3 {
        let _ = handle.infer_query(&query(i as f64 * 50.0), 2);
    }
    let permit = match gate.admit() {
        Admission::Admitted(p) => p,
        Admission::Shed => panic!("idle gate must admit"),
    };
    for _ in 0..4 {
        let _ = handle.infer_query(&query(0.0), 2);
    }
    drop(permit);

    let snap = registry.snapshot();
    let queries = snap.counter("hris_engine_queries_total").unwrap();
    let good = snap.counter("hris_engine_slo_good_total").unwrap();
    let breach = snap.counter("hris_engine_slo_breach_total").unwrap();
    let shed = snap.counter("hris_engine_shed_total").unwrap();
    assert_eq!(queries, 7);
    assert_eq!(shed, 4);
    // Every counted query lands in exactly one SLO bucket; sheds burn.
    assert_eq!(good + breach, queries, "SLO partition must be exact");
    assert!(breach >= shed, "every shed query must count as SLO burn");
}

#[test]
fn shed_batch_rejects_and_counts_every_query() {
    let (handle, registry) = handle_with_gate(1, 0);
    let gate = handle.admission_gate().unwrap();
    let permit = match gate.admit() {
        Admission::Admitted(p) => p,
        Admission::Shed => panic!("idle gate must admit"),
    };
    let queries: Vec<Trajectory> = (0..3).map(|i| query(i as f64 * 40.0)).collect();
    let results = handle.infer_batch_detailed(&queries, 2);
    drop(permit);
    assert_eq!(results.len(), 3);
    for r in &results {
        assert!(matches!(
            r.outcome,
            QueryOutcome::Rejected {
                reason: RejectReason::Overloaded
            }
        ));
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counter("hris_engine_shed_total"), Some(3));
    assert_eq!(snap.counter("hris_engine_queries_total"), Some(3));
}

#[test]
fn admission_gauges_report_pressure_and_drain_to_zero() {
    let (handle, _registry) = handle_with_gate(1, 2);
    let gate = handle.admission_gate().unwrap();
    let server = handle.serve_metrics("127.0.0.1:0").expect("serve");
    let addr = server.addr();

    // Idle: gauges scrape as zero and /healthz is green.
    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("hris_admission_inflight 0"), "{body}");
    assert!(body.contains("hris_admission_queued 0"), "{body}");
    assert!(body.contains("hris_engine_shed_total 0"), "{body}");
    assert_eq!(http_get(addr, "/healthz").0, 200);

    // Saturate: slot taken + waiting room filled by parked threads.
    let permit = match gate.admit() {
        Admission::Admitted(p) => p,
        Admission::Shed => panic!("idle gate must admit"),
    };
    let mut waiters = Vec::new();
    for _ in 0..2 {
        let h = Arc::clone(&handle);
        waiters.push(std::thread::spawn(move || h.infer_query(&query(0.0), 2)));
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while gate.queued() < 2 {
        assert!(Instant::now() < deadline, "waiters never queued");
        std::thread::sleep(Duration::from_millis(5));
    }

    let (_, body) = http_get(addr, "/metrics");
    assert!(body.contains("hris_admission_inflight 1"), "{body}");
    assert!(body.contains("hris_admission_queued 2"), "{body}");
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 503, "saturated gate must degrade /healthz: {body}");
    assert!(body.contains("admission_pressure"), "{body}");
    let (_, varz) = http_get(addr, "/varz");
    assert!(varz.contains("\"admission\""), "{varz}");
    assert!(varz.contains("\"queued_high_watermark\""), "{varz}");

    // One more query on a saturated gate sheds rather than queueing.
    let shed = handle.infer_query(&query(0.0), 2);
    assert!(matches!(
        shed.outcome,
        QueryOutcome::Rejected {
            reason: RejectReason::Overloaded
        }
    ));

    // Release and drain: waiters finish un-shed, gauges return to zero,
    // health recovers without intervention.
    drop(permit);
    for w in waiters {
        let r = w.join().unwrap();
        assert!(!matches!(
            r.outcome,
            QueryOutcome::Rejected {
                reason: RejectReason::Overloaded
            }
        ));
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (_, body) = http_get(addr, "/metrics");
        if body.contains("hris_admission_inflight 0") && body.contains("hris_admission_queued 0") {
            break;
        }
        assert!(Instant::now() < deadline, "gauges never drained: {body}");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(http_get(addr, "/healthz").0, 200);
    assert!(gate.queued_high_watermark() >= 2);

    server.shutdown();
}

#[test]
fn config_rejects_zero_inflight_and_default_is_off() {
    let err = EngineConfig::builder().admission(0, 8).build().unwrap_err();
    assert!(err.to_string().contains("max_inflight"));

    let cfg = EngineConfig::default();
    assert!(!cfg.admission.enabled);
    let handle = EngineHandle::with_config(
        net(),
        TrajectoryArchive::empty(),
        HrisParams::default(),
        EngineConfig::builder().observability(true).build().unwrap(),
    );
    assert!(handle.admission_gate().is_none());
}
