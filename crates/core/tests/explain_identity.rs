//! The explain layer is an observer, not a participant: with tracing and
//! explain enabled, the engine's answers must be **byte-identical** — same
//! routes, same score bits, same outcomes — to the default disabled
//! configuration, and the audit documents must describe exactly what was
//! returned (ranks in order, score components matching the routes,
//! attribution arithmetic matching the configured rerank model).

use hris::{EngineConfig, Hris, HrisParams, QueryEngine, QueryResult, RerankModel};
use hris_geo::Point;
use hris_roadnet::{generator, NetworkConfig, RoadNetwork};
use hris_traj::{GpsPoint, SimConfig, Simulator, TrajId, Trajectory, TrajectoryArchive};

fn net() -> RoadNetwork {
    generator::generate(&NetworkConfig::small(5))
}

fn archive(net: &RoadNetwork) -> TrajectoryArchive {
    let mut sim = Simulator::new(
        net,
        SimConfig {
            num_trips: 80,
            num_od_patterns: 6,
            min_trip_dist_m: 400.0,
            seed: 11,
            ..SimConfig::default()
        },
    );
    sim.generate_archive().0
}

fn queries() -> Vec<Trajectory> {
    (0..5)
        .map(|qi| {
            Trajectory::new(
                TrajId(100 + qi),
                (0..4)
                    .map(|i| {
                        GpsPoint::new(
                            Point::new(
                                250.0 + qi as f64 * 280.0 + i as f64 * 380.0,
                                140.0 + i as f64 * 70.0,
                            ),
                            i as f64 * 120.0,
                        )
                    })
                    .collect(),
            )
        })
        .collect()
}

fn assert_identical(a: &QueryResult, b: &QueryResult, ctx: &str) {
    assert_eq!(a.outcome, b.outcome, "{ctx}: outcome");
    assert_eq!(a.globals.len(), b.globals.len(), "{ctx}: top-K length");
    for (i, (ga, gb)) in a.globals.iter().zip(&b.globals).enumerate() {
        assert_eq!(ga.route, gb.route, "{ctx}: route {i}");
        assert_eq!(
            ga.log_score.to_bits(),
            gb.log_score.to_bits(),
            "{ctx}: score bits {i}"
        );
        assert_eq!(ga.local_indices, gb.local_indices, "{ctx}: assignment {i}");
    }
}

#[test]
fn explain_and_tracing_leave_outputs_byte_identical() {
    let net = net();
    let archive = archive(&net);
    let hris = Hris::new(&net, archive, HrisParams::default());

    let plain = QueryEngine::with_config(&hris, EngineConfig::default());
    let explained = QueryEngine::with_config(
        &hris,
        EngineConfig::builder()
            .observability(true)
            .explain(32)
            .build()
            .expect("static engine configuration"),
    );

    for (qi, q) in queries().iter().enumerate() {
        let want = plain.infer_query(q, 3);
        let got = explained.infer_query(q, 3);
        assert_identical(&got, &want, &format!("query {qi}"));
    }
    // Every served query audited, under a fresh trace id each.
    let audits = explained.audit_ring().expect("explain is on").snapshot();
    assert_eq!(audits.len(), queries().len());
    let mut ids: Vec<u64> = audits.iter().map(|a| a.trace_id).collect();
    ids.dedup();
    assert_eq!(ids.len(), audits.len(), "one distinct trace id per audit");
}

#[test]
fn audit_documents_describe_the_returned_routes() {
    let net = net();
    let archive = archive(&net);
    let hris = Hris::new(&net, archive, HrisParams::default());
    let engine = QueryEngine::with_config(
        &hris,
        EngineConfig::builder()
            .explain(8)
            .explain_top_k(2)
            .build()
            .expect("static engine configuration"),
    );

    let q = &queries()[0];
    let result = engine.infer_query(q, 3);
    assert!(!result.globals.is_empty(), "workload query must serve");
    let audit = engine
        .audit_ring()
        .expect("explain is on")
        .snapshot()
        .pop()
        .expect("served query audited");

    let v: serde_json::Value = serde_json::from_str(&audit.json).expect("valid audit json");
    assert_eq!(v.get("outcome").and_then(|o| o.as_str()), Some("served"));
    assert_eq!(
        v.get("points").and_then(|p| p.as_u64()),
        Some(q.points.len() as u64)
    );
    let routes = v
        .get("routes")
        .and_then(|r| r.as_array())
        .expect("routes array");
    // Capped at explain_top_k = 2, ranks in order, scores matching the
    // returned routes bit-for-bit (JSON roundtrips f64 exactly via the
    // shortest-roundtrip formatter).
    assert_eq!(routes.len(), result.globals.len().min(2));
    for (rank, (route, global)) in routes.iter().zip(&result.globals).enumerate() {
        assert_eq!(
            route.get("rank").and_then(|r| r.as_u64()),
            Some(rank as u64)
        );
        let score = route
            .get("log_score")
            .and_then(|s| s.as_f64())
            .expect("numeric log_score");
        assert_eq!(score.to_bits(), global.log_score.to_bits());
        assert_eq!(
            route.get("segments").and_then(|s| s.as_u64()),
            Some(global.route.len() as u64)
        );
        assert!(route.get("features").is_some());
        // No rerank model configured: explained score and attributions
        // are null.
        assert!(route
            .get("rerank_score")
            .is_some_and(serde_json::Value::is_null));
    }
}

#[test]
fn rerank_attributions_follow_the_configured_model() {
    let net = net();
    let archive = archive(&net);
    let hris = Hris::new(&net, archive, HrisParams::default());
    // A deterministic hand-built model (no training run needed): nonzero
    // weights so attributions are visible.
    let mut model = RerankModel::zeroed();
    for (i, w) in model.weights.iter_mut().enumerate() {
        *w = 0.1 * (i as f64 + 1.0);
    }
    for s in model.scales.iter_mut() {
        *s = 2.0;
    }

    let engine = QueryEngine::with_config(
        &hris,
        EngineConfig::builder()
            .rerank(model.clone())
            .explain(8)
            .build()
            .expect("static engine configuration"),
    );
    let q = &queries()[1];
    let result = engine.infer_query(q, 3);
    assert!(!result.globals.is_empty());
    let audit = engine
        .audit_ring()
        .expect("explain is on")
        .snapshot()
        .pop()
        .expect("served query audited");
    let v: serde_json::Value = serde_json::from_str(&audit.json).expect("valid audit json");
    assert_eq!(v.get("scorer").and_then(|s| s.as_str()), Some("learned"));
    let routes = v.get("routes").and_then(|r| r.as_array()).unwrap();
    for route in routes {
        assert!(
            route
                .get("rerank_score")
                .is_some_and(|s| s.as_f64().is_some()),
            "learned scorer explains its score"
        );
        let attrs = route
            .get("attributions")
            .and_then(|a| a.as_obj())
            .expect("attribution object");
        assert_eq!(attrs.len(), model.weights.len(), "one attribution per feature");
    }
}
