//! Snapshot-isolation stress tests for live ingestion (DESIGN.md §5f).
//!
//! Reader threads hammer the snapshot slot (directly and through a live
//! [`EngineHandle`]) while a writer appends and publishes epochs. The tests
//! assert the two contracts the ingest subsystem sells:
//!
//! 1. **No half-applied epochs.** Every snapshot any reader ever observes is
//!    internally consistent, epochs advance monotonically per reader, and an
//!    epoch's contents are identical no matter when it is observed — all of
//!    which match what the writer actually published.
//! 2. **Frozen epochs are byte-identical to cold rebuilds.** A handle pinned
//!    to epoch *e* returns bit-for-bit the same routes and scores as a
//!    from-scratch bulk-loaded archive of the same trajectories, before,
//!    during, and after later publishes.

use hris::prelude::*;
use hris_roadnet::{generator, NetworkConfig, RoadNetwork};
use hris_traj::{resample_to_interval, SimConfig, Simulator, TrajId, Trajectory};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

/// Network, an initial archive, a stream of trajectories still to ingest,
/// and a handful of low-sampling-rate queries.
fn scenario() -> (
    Arc<RoadNetwork>,
    Vec<Trajectory>,
    Vec<Trajectory>,
    Vec<Trajectory>,
) {
    let net = Arc::new(generator::generate(&NetworkConfig::small(8)));
    let mut sim = Simulator::new(
        &net,
        SimConfig {
            num_trips: 160,
            num_od_patterns: 8,
            min_trip_dist_m: 800.0,
            seed: 29,
            ..SimConfig::default()
        },
    );
    let (archive, routes) = sim.generate_archive();
    let mut queries = Vec::new();
    for (i, r) in routes.iter().step_by(routes.len() / 4).take(4).enumerate() {
        let pts = hris_traj::simulator::drive_route(&net, r, 0.0, 20.0, 0.8).unwrap();
        queries.push(resample_to_interval(
            &Trajectory::new(TrajId(i as u32), pts),
            240.0,
        ));
    }
    let mut trips = archive.trajectories().to_vec();
    let stream = trips.split_off(trips.len() / 2);
    (net, trips, stream, queries)
}

/// What the writer published at one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EpochFacts {
    num_trajectories: usize,
    num_points: usize,
}

fn facts_of(snap: &ArchiveSnapshot) -> EpochFacts {
    EpochFacts {
        num_trajectories: snap.num_trajectories(),
        num_points: snap.num_points(),
    }
}

/// A snapshot is half-applied if its counters disagree with its contents.
fn assert_self_consistent(snap: &ArchiveSnapshot) {
    let traj_points: usize = snap.trajectories().iter().map(|t| t.len()).sum();
    assert_eq!(
        snap.num_points(),
        traj_points,
        "epoch {}: point counter disagrees with stored trajectories",
        snap.epoch()
    );
    for (i, t) in snap.trajectories().iter().enumerate() {
        assert_eq!(
            t.id.index(),
            i,
            "epoch {}: trajectory ids not contiguous",
            snap.epoch()
        );
    }
}

#[test]
fn concurrent_readers_never_observe_half_applied_epochs() {
    let (net, initial, stream, queries) = scenario();
    let mut writer = ArchiveWriter::new(hris_traj::TrajectoryArchive::new(initial));
    let reader = writer.reader();
    let handle = Arc::new(EngineHandle::live(
        Arc::clone(&net),
        writer.reader(),
        HrisParams::default(),
        EngineConfig::default(),
    ));

    let done = Arc::new(AtomicBool::new(false));
    // Every (epoch -> facts) observation from any reader thread.
    let observed: Arc<Mutex<HashMap<u64, EpochFacts>>> = Arc::new(Mutex::new(HashMap::new()));
    {
        let snap = reader.latest();
        observed
            .lock()
            .unwrap()
            .insert(snap.epoch(), facts_of(&snap));
    }

    // Raw snapshot readers: check isolation invariants as fast as possible.
    let mut threads = Vec::new();
    for _ in 0..2 {
        let reader = reader.clone();
        let done = Arc::clone(&done);
        let observed = Arc::clone(&observed);
        threads.push(thread::spawn(move || {
            let mut last_epoch = 0u64;
            while !done.load(Ordering::Acquire) {
                let snap = reader.latest();
                assert_self_consistent(&snap);
                assert!(
                    snap.epoch() >= last_epoch,
                    "epoch went backwards: {} after {last_epoch}",
                    snap.epoch()
                );
                last_epoch = snap.epoch();
                let facts = facts_of(&snap);
                let mut seen = observed.lock().unwrap();
                if let Some(prev) = seen.insert(snap.epoch(), facts) {
                    assert_eq!(
                        prev,
                        facts,
                        "epoch {} changed contents between observations",
                        snap.epoch()
                    );
                }
                thread::yield_now();
            }
        }));
    }

    // Query thread: full inference through the live handle while epochs roll.
    {
        let handle = Arc::clone(&handle);
        let done = Arc::clone(&done);
        let queries = queries.clone();
        threads.push(thread::spawn(move || {
            let mut rounds = 0usize;
            while !done.load(Ordering::Acquire) || rounds == 0 {
                for q in &queries {
                    let r = handle.infer_query(q, 2);
                    assert!(
                        matches!(
                            r.outcome,
                            QueryOutcome::Ok
                                | QueryOutcome::Repaired { .. }
                                | QueryOutcome::Degraded { .. }
                        ),
                        "live query failed mid-ingest: {:?}",
                        r.outcome
                    );
                    assert!(!r.globals.is_empty(), "live query lost all routes");
                }
                rounds += 1;
            }
            // Batch path: one epoch per batch, exercised at least once.
            let results = handle.infer_batch_detailed(&queries, 2);
            assert_eq!(results.len(), queries.len());
        }));
    }

    // Writer: append in small batches, publish each, remember the facts.
    let mut published: Vec<(u64, EpochFacts)> =
        vec![(writer.epoch(), facts_of(&writer.snapshot()))];
    for chunk in stream.chunks(5) {
        writer.append_batch(chunk.to_vec());
        let snap = writer.publish();
        published.push((snap.epoch(), facts_of(&snap)));
        thread::yield_now();
    }
    done.store(true, Ordering::Release);
    for t in threads {
        t.join().expect("stress thread panicked");
    }

    // Every epoch any reader observed must be one the writer published,
    // with exactly the published contents.
    let published: HashMap<u64, EpochFacts> = published.into_iter().collect();
    let observed = observed.lock().unwrap();
    assert!(!observed.is_empty());
    for (epoch, facts) in observed.iter() {
        let want = published
            .get(epoch)
            .unwrap_or_else(|| panic!("readers observed unpublished epoch {epoch}"));
        assert_eq!(
            facts, want,
            "epoch {epoch}: observed contents differ from published"
        );
    }
    assert_eq!(
        writer.report().epochs_published,
        published.len() - 1,
        "writer report disagrees with publish count"
    );
}

#[test]
fn columnar_export_under_concurrent_ingest_is_never_torn() {
    use hris_traj::ColumnarSnapshot;

    let (_net, initial, stream, _queries) = scenario();
    let mut writer = ArchiveWriter::new(hris_traj::TrajectoryArchive::new(initial));
    let reader = writer.reader();
    let done = Arc::new(AtomicBool::new(false));

    // Exporter threads: snapshot -> columnar blob -> decode, continuously,
    // while the writer publishes. Each decode must reproduce exactly the
    // trajectories of the epoch it was exported from — a torn export would
    // mix trips from two epochs or disagree on counts.
    let mut threads = Vec::new();
    let observed: Arc<Mutex<HashMap<u64, EpochFacts>>> = Arc::new(Mutex::new(HashMap::new()));
    for _ in 0..2 {
        let reader = reader.clone();
        let done = Arc::clone(&done);
        let observed = Arc::clone(&observed);
        threads.push(thread::spawn(move || {
            while !done.load(Ordering::Acquire) {
                let snap = reader.latest();
                let blob = snap.to_columnar();
                let col = ColumnarSnapshot::open(blob).expect("open mid-ingest");
                assert_eq!(col.epoch(), snap.epoch(), "embedded epoch drifted");
                let decoded = col.decode_archive().expect("decode mid-ingest");
                assert_eq!(decoded.num_trajectories(), snap.num_trajectories());
                assert_eq!(decoded.num_points(), snap.num_points());
                for (a, b) in decoded.trajectories().iter().zip(snap.trajectories()) {
                    assert_eq!(a.id, b.id);
                    assert_eq!(a.points.len(), b.points.len());
                    for (pa, pb) in a.points.iter().zip(&b.points) {
                        assert_eq!(pa.t.to_bits(), pb.t.to_bits());
                        assert_eq!(pa.pos.x.to_bits(), pb.pos.x.to_bits());
                        assert_eq!(pa.pos.y.to_bits(), pb.pos.y.to_bits());
                    }
                }
                let facts = EpochFacts {
                    num_trajectories: decoded.num_trajectories(),
                    num_points: decoded.num_points(),
                };
                let mut seen = observed.lock().unwrap();
                if let Some(prev) = seen.insert(col.epoch(), facts) {
                    assert_eq!(
                        prev,
                        facts,
                        "epoch {} exported different contents twice",
                        col.epoch()
                    );
                }
                thread::yield_now();
            }
        }));
    }

    let mut published: Vec<(u64, EpochFacts)> =
        vec![(writer.epoch(), facts_of(&writer.snapshot()))];
    for chunk in stream.chunks(5) {
        writer.append_batch(chunk.to_vec());
        let snap = writer.publish();
        published.push((snap.epoch(), facts_of(&snap)));
        // Writer-side export must also see its own just-published epoch.
        let col = ColumnarSnapshot::open(writer.export_columnar()).unwrap();
        assert_eq!(col.epoch(), snap.epoch());
        assert_eq!(col.num_points(), snap.num_points());
        thread::yield_now();
    }
    done.store(true, Ordering::Release);
    for t in threads {
        t.join().expect("exporter thread panicked");
    }

    // Every epoch any exporter decoded must be one the writer published,
    // with exactly the published contents.
    let published: HashMap<u64, EpochFacts> = published.into_iter().collect();
    let observed = observed.lock().unwrap();
    assert!(!observed.is_empty());
    for (epoch, facts) in observed.iter() {
        let want = published
            .get(epoch)
            .unwrap_or_else(|| panic!("exported unpublished epoch {epoch}"));
        assert_eq!(
            facts, want,
            "epoch {epoch}: exported contents differ from published"
        );
    }
}

#[test]
fn frozen_epoch_results_are_byte_identical_to_cold_rebuild() {
    let (net, initial, stream, queries) = scenario();
    let mut writer = ArchiveWriter::new(hris_traj::TrajectoryArchive::new(initial));
    let mut chunks = stream.chunks(20);

    // Ingest a first wave, then freeze that epoch.
    writer.append_batch(chunks.next().unwrap().to_vec());
    writer.publish();
    let frozen = writer.snapshot();
    let frozen_epoch = frozen.epoch();
    let frozen_handle = EngineHandle::from_snapshot(
        Arc::clone(&net),
        Arc::clone(&frozen),
        HrisParams::default(),
        EngineConfig::default(),
    );
    let before: Vec<QueryResult> = queries
        .iter()
        .map(|q| frozen_handle.infer_query(q, 3))
        .collect();

    // Cold rebuild: bulk-load a brand-new archive from the same trajectories.
    let cold = hris_traj::TrajectoryArchive::new(frozen.trajectories().to_vec());
    assert_eq!(cold.num_points(), frozen.num_points());
    let cold_handle = EngineHandle::new(Arc::clone(&net), cold, HrisParams::default());

    // Keep ingesting: the frozen epoch must not move.
    for chunk in chunks {
        writer.append_batch(chunk.to_vec());
        writer.publish();
    }
    assert!(writer.epoch() > frozen_epoch);
    assert_eq!(frozen_handle.epoch(), frozen_epoch);

    for (q, want) in queries.iter().zip(&before) {
        for (label, got) in [
            (
                "frozen after later publishes",
                frozen_handle.infer_query(q, 3),
            ),
            ("cold rebuild", cold_handle.infer_query(q, 3)),
        ] {
            assert_eq!(got.outcome, want.outcome, "{label}: outcome differs");
            assert_eq!(
                got.globals.len(),
                want.globals.len(),
                "{label}: route count differs"
            );
            for (a, b) in got.globals.iter().zip(&want.globals) {
                assert_eq!(a.route, b.route, "{label}: route differs");
                assert_eq!(
                    a.log_score.to_bits(),
                    b.log_score.to_bits(),
                    "{label}: score bits differ"
                );
            }
        }
    }
}
