//! Integration tests of the engine's observability layer: metric/trace
//! accounting must be exact where the workload is deterministic (counts,
//! cache tallies) and internally consistent where it is not (wall times).

use hris::{EngineConfig, ExecMode, Hris, HrisParams, ObsOptions, QueryEngine};
use hris_obs::MetricsRegistry;
use hris_roadnet::{generator, NetworkConfig};
use hris_traj::{resample_to_interval, SimConfig, Simulator, TrajId, Trajectory};
use std::sync::Arc;

fn scenario() -> (Hris<'static>, Vec<Trajectory>) {
    let net: &'static _ = Box::leak(Box::new(generator::generate(&NetworkConfig::small(21))));
    let mut sim = Simulator::new(
        net,
        SimConfig {
            num_trips: 200,
            num_od_patterns: 8,
            min_trip_dist_m: 800.0,
            seed: 7,
            ..SimConfig::default()
        },
    );
    let (archive, routes) = sim.generate_archive();
    let mut queries = Vec::new();
    for (i, r) in routes.iter().step_by(routes.len() / 3).take(3).enumerate() {
        let pts = hris_traj::simulator::drive_route(net, r, 0.0, 20.0, 0.8).unwrap();
        queries.push(resample_to_interval(
            &Trajectory::new(TrajId(i as u32), pts),
            240.0,
        ));
    }
    (Hris::new(net, archive, HrisParams::default()), queries)
}

#[test]
fn query_and_batch_counters_are_exact() {
    let (hris, queries) = scenario();
    let engine = QueryEngine::with_config(
        &hris,
        EngineConfig::builder().observability(true).build().unwrap(),
    );
    let _ = engine.infer_batch(&queries, 2);
    let _ = engine.infer_batch(&queries, 2);
    let _ = engine.infer_routes(&queries[0], 2);

    let snap = engine.observability().unwrap().snapshot();
    let served = (2 * queries.len() + 1) as u64;
    assert_eq!(snap.counter("hris_engine_queries_total"), Some(served));
    assert_eq!(snap.counter("hris_engine_batches_total"), Some(2));
    // Phase histograms saw every query exactly once each.
    for phase in ["candidates", "local", "global", "refine"] {
        let h = snap
            .histogram("hris_engine_phase_seconds", &[("phase", phase)])
            .unwrap_or_else(|| panic!("phase histogram `{phase}` missing"));
        assert_eq!(h.count, served, "phase `{phase}` count");
    }
    let q = snap.histogram("hris_engine_query_seconds", &[]).unwrap();
    assert_eq!(q.count, served);
    // Gauges are back to idle after the batches drained.
    assert_eq!(snap.gauge("hris_engine_queue_depth"), Some(0));
    assert_eq!(snap.gauge("hris_engine_workers_busy"), Some(0));
}

#[test]
fn traces_attribute_cache_traffic_exactly() {
    let (hris, queries) = scenario();
    let engine = QueryEngine::with_config(
        &hris,
        EngineConfig::builder().observability(true).build().unwrap(),
    );
    let _ = engine.infer_batch(&queries, 2);

    let obs = engine.observability().unwrap();
    let traces = obs.traces();
    assert_eq!(traces.len(), queries.len());
    for (t, q) in traces.iter().zip(&queries) {
        assert_eq!(t.points, q.len());
        assert_eq!(t.pairs, q.len().saturating_sub(1));
        assert!(t.total_s >= 0.0);
        // Phase times never exceed the query total.
        let phases = t.candidates_s + t.local_s + t.global_s + t.refine_s;
        assert!(
            phases <= t.total_s * 1.001,
            "phases {phases} > total {}",
            t.total_s
        );
        // One candidate lookup per query point.
        assert_eq!(t.cand_hits + t.cand_misses, q.len() as u64);
    }
    // Query ids are the engine's own monotonic sequence.
    let ids: Vec<u64> = traces.iter().map(|t| t.query_id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "duplicate query ids: {ids:?}");

    // The per-query tallies sum exactly to the global cache counters.
    let stats = engine.cache_stats();
    let sp: u64 = traces.iter().map(|t| t.sp_hits + t.sp_misses).sum();
    let cand: u64 = traces.iter().map(|t| t.cand_hits + t.cand_misses).sum();
    assert_eq!(sp, stats.sp_hits + stats.sp_misses);
    assert_eq!(cand, stats.candidate_hits + stats.candidate_misses);
    // And the registry exports the same pairs.
    let snap = obs.snapshot();
    assert_eq!(
        snap.counter("hris_engine_sp_cache_hits_total"),
        Some(stats.sp_hits)
    );
    assert_eq!(
        snap.counter("hris_engine_candidate_memo_misses_total"),
        Some(stats.candidate_misses)
    );
}

#[test]
fn slow_query_threshold_flags_and_counts() {
    let (hris, queries) = scenario();
    // A zero threshold makes every real query "slow".
    let cfg = EngineConfig {
        obs: ObsOptions {
            enabled: true,
            slow_query_threshold_s: 0.0,
            ..ObsOptions::default()
        },
        ..EngineConfig::default()
    };
    let engine = QueryEngine::with_config(&hris, cfg);
    let _ = engine.infer_batch(&queries, 2);
    let obs = engine.observability().unwrap();
    assert!(obs.traces().iter().all(|t| t.slow));
    assert_eq!(
        obs.snapshot().counter("hris_engine_slow_queries_total"),
        Some(queries.len() as u64)
    );
    assert_eq!(obs.slow_query_threshold_s(), 0.0);
}

#[test]
fn trace_ring_evicts_oldest_and_counts_drops() {
    let (hris, queries) = scenario();
    let cfg = EngineConfig {
        obs: ObsOptions {
            enabled: true,
            trace_capacity: 2,
            ..ObsOptions::default()
        },
        mode: ExecMode::Sequential,
        batch_parallel: false,
        ..EngineConfig::default()
    };
    let engine = QueryEngine::with_config(&hris, cfg);
    let _ = engine.infer_batch(&queries, 2); // 3 queries into a 2-slot ring
    let obs = engine.observability().unwrap();
    let traces = obs.traces();
    assert_eq!(traces.len(), 2);
    assert_eq!(obs.dropped_traces(), 1);
    // Sequential batch → the two *newest* queries survive.
    assert_eq!(traces[0].query_id, 1);
    assert_eq!(traces[1].query_id, 2);
    assert_eq!(
        obs.snapshot().counter("hris_engine_traces_dropped_total"),
        Some(1)
    );
    // Draining empties the ring but keeps the metrics.
    assert_eq!(obs.drain_traces().len(), 2);
    assert!(obs.traces().is_empty());
    assert_eq!(
        obs.snapshot().counter("hris_engine_queries_total"),
        Some(queries.len() as u64)
    );
}

#[test]
fn zero_trace_capacity_keeps_aggregates_only() {
    let (hris, queries) = scenario();
    let cfg = EngineConfig {
        obs: ObsOptions {
            enabled: true,
            trace_capacity: 0,
            ..ObsOptions::default()
        },
        ..EngineConfig::default()
    };
    let engine = QueryEngine::with_config(&hris, cfg);
    let _ = engine.infer_batch(&queries, 2);
    let obs = engine.observability().unwrap();
    assert!(obs.traces().is_empty());
    assert_eq!(
        obs.snapshot().counter("hris_engine_queries_total"),
        Some(queries.len() as u64)
    );
}

#[test]
fn shared_registry_collects_engine_metrics() {
    let (hris, queries) = scenario();
    let registry = Arc::new(MetricsRegistry::new());
    // A caller-owned metric lives alongside the engine's.
    let own = registry.counter("my_harness_runs_total", "Harness runs.");
    own.inc();
    let engine = QueryEngine::with_registry(&hris, EngineConfig::default(), registry.clone());
    assert!(engine.config().obs.enabled, "with_registry implies obs");
    let _ = engine.infer_batch(&queries, 2);

    let snap = registry.snapshot();
    assert_eq!(snap.counter("my_harness_runs_total"), Some(1));
    assert_eq!(
        snap.counter("hris_engine_queries_total"),
        Some(queries.len() as u64)
    );
    // The exported text carries both families.
    let text = snap.to_prometheus();
    assert!(text.contains("my_harness_runs_total 1"));
    assert!(text.contains("# TYPE hris_engine_phase_seconds histogram"));
}
