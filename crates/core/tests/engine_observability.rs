//! Integration tests of the engine's observability layer: metric/trace
//! accounting must be exact where the workload is deterministic (counts,
//! cache tallies) and internally consistent where it is not (wall times).

use hris::{EngineConfig, ExecMode, Hris, HrisParams, ObsOptions, QueryEngine};
use hris_obs::MetricsRegistry;
use hris_roadnet::{generator, NetworkConfig};
use hris_traj::{resample_to_interval, SimConfig, Simulator, TrajId, Trajectory};
use std::sync::Arc;

fn scenario() -> (Hris<'static>, Vec<Trajectory>) {
    let net: &'static _ = Box::leak(Box::new(generator::generate(&NetworkConfig::small(21))));
    let mut sim = Simulator::new(
        net,
        SimConfig {
            num_trips: 200,
            num_od_patterns: 8,
            min_trip_dist_m: 800.0,
            seed: 7,
            ..SimConfig::default()
        },
    );
    let (archive, routes) = sim.generate_archive();
    let mut queries = Vec::new();
    for (i, r) in routes.iter().step_by(routes.len() / 3).take(3).enumerate() {
        let pts = hris_traj::simulator::drive_route(net, r, 0.0, 20.0, 0.8).unwrap();
        queries.push(resample_to_interval(
            &Trajectory::new(TrajId(i as u32), pts),
            240.0,
        ));
    }
    (Hris::new(net, archive, HrisParams::default()), queries)
}

#[test]
fn query_and_batch_counters_are_exact() {
    let (hris, queries) = scenario();
    let engine = QueryEngine::with_config(
        &hris,
        EngineConfig::builder().observability(true).build().unwrap(),
    );
    let _ = engine.infer_batch(&queries, 2);
    let _ = engine.infer_batch(&queries, 2);
    let _ = engine.infer_routes(&queries[0], 2);

    let snap = engine.observability().unwrap().snapshot();
    let served = (2 * queries.len() + 1) as u64;
    assert_eq!(snap.counter("hris_engine_queries_total"), Some(served));
    assert_eq!(snap.counter("hris_engine_batches_total"), Some(2));
    // Phase histograms saw every query exactly once each.
    for phase in ["candidates", "local", "global", "refine"] {
        let h = snap
            .histogram("hris_engine_phase_seconds", &[("phase", phase)])
            .unwrap_or_else(|| panic!("phase histogram `{phase}` missing"));
        assert_eq!(h.count, served, "phase `{phase}` count");
    }
    let q = snap.histogram("hris_engine_query_seconds", &[]).unwrap();
    assert_eq!(q.count, served);
    // Gauges are back to idle after the batches drained.
    assert_eq!(snap.gauge("hris_engine_queue_depth"), Some(0));
    assert_eq!(snap.gauge("hris_engine_workers_busy"), Some(0));
}

#[test]
fn sp_oracle_metrics_are_registered_and_live() {
    let (hris, queries) = scenario();
    let engine = QueryEngine::with_config(
        &hris,
        EngineConfig::builder().observability(true).build().unwrap(),
    );
    // Registered at engine construction, before any query runs.
    let snap = engine.observability().unwrap().snapshot();
    assert_eq!(snap.counter("hris_sp_oracle_hits_total"), Some(0));
    assert_eq!(snap.counter("hris_sp_oracle_misses_total"), Some(0));
    let micros = snap
        .gauge("hris_sp_oracle_preprocessing_micros")
        .expect("preprocessing gauge registered");
    assert!(micros >= 0);

    // The registered pair is live: oracle traffic moves the exported
    // counters without re-registration.
    let _ = engine.infer_batch(&queries, 2);
    let oracle = hris.network().sp_oracle();
    let snap = engine.observability().unwrap().snapshot();
    assert_eq!(
        snap.counter("hris_sp_oracle_hits_total"),
        Some(oracle.hits())
    );
    assert_eq!(
        snap.counter("hris_sp_oracle_misses_total"),
        Some(oracle.misses())
    );
}

#[test]
fn traces_attribute_cache_traffic_exactly() {
    let (hris, queries) = scenario();
    let engine = QueryEngine::with_config(
        &hris,
        EngineConfig::builder().observability(true).build().unwrap(),
    );
    let _ = engine.infer_batch(&queries, 2);

    let obs = engine.observability().unwrap();
    let traces = obs.traces();
    assert_eq!(traces.len(), queries.len());
    for (t, q) in traces.iter().zip(&queries) {
        assert_eq!(t.points, q.len());
        assert_eq!(t.pairs, q.len().saturating_sub(1));
        assert!(t.total_s >= 0.0);
        // Phase times never exceed the query total.
        let phases = t.candidates_s + t.local_s + t.global_s + t.refine_s;
        assert!(
            phases <= t.total_s * 1.001,
            "phases {phases} > total {}",
            t.total_s
        );
        // One candidate lookup per query point.
        assert_eq!(t.cand_hits + t.cand_misses, q.len() as u64);
    }
    // Query ids are the engine's own monotonic sequence.
    let ids: Vec<u64> = traces.iter().map(|t| t.query_id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "duplicate query ids: {ids:?}");

    // The per-query tallies sum exactly to the global cache counters.
    let stats = engine.cache_stats();
    let sp: u64 = traces.iter().map(|t| t.sp_hits + t.sp_misses).sum();
    let cand: u64 = traces.iter().map(|t| t.cand_hits + t.cand_misses).sum();
    assert_eq!(sp, stats.sp_hits + stats.sp_misses);
    assert_eq!(cand, stats.candidate_hits + stats.candidate_misses);
    // And the registry exports the same pairs.
    let snap = obs.snapshot();
    assert_eq!(
        snap.counter("hris_engine_sp_cache_hits_total"),
        Some(stats.sp_hits)
    );
    assert_eq!(
        snap.counter("hris_engine_candidate_memo_misses_total"),
        Some(stats.candidate_misses)
    );
}

#[test]
fn slow_query_threshold_flags_and_counts() {
    let (hris, queries) = scenario();
    // A zero threshold makes every real query "slow".
    let cfg = EngineConfig {
        obs: ObsOptions {
            enabled: true,
            slow_query_threshold_s: 0.0,
            ..ObsOptions::default()
        },
        ..EngineConfig::default()
    };
    let engine = QueryEngine::with_config(&hris, cfg);
    let _ = engine.infer_batch(&queries, 2);
    let obs = engine.observability().unwrap();
    assert!(obs.traces().iter().all(|t| t.slow));
    assert_eq!(
        obs.snapshot().counter("hris_engine_slow_queries_total"),
        Some(queries.len() as u64)
    );
    assert_eq!(obs.slow_query_threshold_s(), 0.0);
}

#[test]
fn trace_ring_evicts_oldest_and_counts_drops() {
    let (hris, queries) = scenario();
    let cfg = EngineConfig {
        obs: ObsOptions {
            enabled: true,
            trace_capacity: 2,
            ..ObsOptions::default()
        },
        mode: ExecMode::Sequential,
        batch_parallel: false,
        ..EngineConfig::default()
    };
    let engine = QueryEngine::with_config(&hris, cfg);
    let _ = engine.infer_batch(&queries, 2); // 3 queries into a 2-slot ring
    let obs = engine.observability().unwrap();
    let traces = obs.traces();
    assert_eq!(traces.len(), 2);
    assert_eq!(obs.dropped_traces(), 1);
    // Sequential batch → the two *newest* queries survive.
    assert_eq!(traces[0].query_id, 1);
    assert_eq!(traces[1].query_id, 2);
    assert_eq!(
        obs.snapshot().counter("hris_engine_traces_dropped_total"),
        Some(1)
    );
    // Draining empties the ring but keeps the metrics.
    assert_eq!(obs.drain_traces().len(), 2);
    assert!(obs.traces().is_empty());
    assert_eq!(
        obs.snapshot().counter("hris_engine_queries_total"),
        Some(queries.len() as u64)
    );
}

#[test]
fn zero_trace_capacity_keeps_aggregates_only() {
    let (hris, queries) = scenario();
    let cfg = EngineConfig {
        obs: ObsOptions {
            enabled: true,
            trace_capacity: 0,
            ..ObsOptions::default()
        },
        ..EngineConfig::default()
    };
    let engine = QueryEngine::with_config(&hris, cfg);
    let _ = engine.infer_batch(&queries, 2);
    let obs = engine.observability().unwrap();
    assert!(obs.traces().is_empty());
    assert_eq!(
        obs.snapshot().counter("hris_engine_queries_total"),
        Some(queries.len() as u64)
    );
}

#[test]
fn sampled_queries_carry_complete_span_trees() {
    let (hris, queries) = scenario();
    // A vanishing threshold marks every query slow; 1-in-1 sampling gives
    // every trace a *live* (non-synthetic) tree.
    let cfg = EngineConfig::builder()
        .observability(true)
        .span_sampling(1)
        .slow_query_threshold_s(1e-12)
        .build()
        .unwrap();
    let engine = QueryEngine::with_config(&hris, cfg);
    let _ = engine.infer_batch(&queries, 2);

    let obs = engine.observability().unwrap();
    let traces = obs.traces();
    assert_eq!(traces.len(), queries.len());
    for t in &traces {
        assert!(t.slow);
        assert_ne!(t.root_span, 0, "sampled trace must name its root span");
        let root = t
            .spans
            .iter()
            .find(|s| s.id == t.root_span)
            .expect("root span present in tree");
        assert_eq!(root.name, "query");
        assert_eq!(root.parent, 0);
        // Every span's parent resolves within the same tree.
        let ids: std::collections::HashSet<u64> = t.spans.iter().map(|s| s.id).collect();
        for s in &t.spans {
            assert!(
                s.parent == 0 || ids.contains(&s.parent),
                "span `{}` has dangling parent {}",
                s.name,
                s.parent
            );
        }
        // The four pipeline phases hang off the root and account for at
        // least 90% of the query span's wall time.
        let mut phase_total = 0.0;
        for phase in ["candidates", "local", "global", "refine"] {
            let s = t
                .spans
                .iter()
                .find(|s| s.name == phase && s.parent == t.root_span)
                .unwrap_or_else(|| panic!("phase span `{phase}` missing"));
            phase_total += s.duration_s;
        }
        assert!(
            phase_total >= 0.90 * root.duration_s,
            "phase spans cover {phase_total}s of a {}s query",
            root.duration_s
        );
        // Per-pair children live under the `local` phase.
        let local_id = t
            .spans
            .iter()
            .find(|s| s.name == "local")
            .map(|s| s.id)
            .unwrap();
        let pair_spans = t.spans.iter().filter(|s| s.parent == local_id).count();
        assert_eq!(pair_spans, t.pairs, "one pair span per consecutive pair");
    }

    // Exemplars: the query-latency histogram remembers span ids, and each
    // one resolves to a span actually retained in the trace ring.
    let snap = obs.snapshot();
    let h = snap.histogram("hris_engine_query_seconds", &[]).unwrap();
    let ring_spans: std::collections::HashSet<u64> = traces
        .iter()
        .flat_map(|t| t.spans.iter().map(|s| s.id))
        .collect();
    let exemplars: Vec<u64> = h.exemplars.iter().flatten().copied().collect();
    assert!(!exemplars.is_empty(), "expected at least one exemplar");
    assert!(
        exemplars.iter().any(|id| ring_spans.contains(id)),
        "no exemplar resolves into the trace ring: {exemplars:?}"
    );
}

#[test]
fn slow_unsampled_queries_get_synthetic_trees() {
    let (hris, queries) = scenario();
    // Sampling off entirely — but every query is slow, so the engine must
    // reconstruct a tree from the phase timings it already measured.
    let cfg = EngineConfig::builder()
        .observability(true)
        .span_sampling(0)
        .slow_query_threshold_s(1e-12)
        .build()
        .unwrap();
    let engine = QueryEngine::with_config(&hris, cfg);
    let _ = engine.infer_batch(&queries, 2);

    let obs = engine.observability().unwrap();
    for t in &obs.traces() {
        assert!(t.slow);
        assert_ne!(t.root_span, 0);
        assert_eq!(t.spans.len(), 5, "root + four phases");
        assert!(
            t.spans
                .iter()
                .all(|s| s.attrs.iter().any(|(k, _)| k == "synthetic")),
            "synthetic trees must be labelled as such"
        );
        let root = t.spans.iter().find(|s| s.id == t.root_span).unwrap();
        assert_eq!(root.duration_s, t.total_s);
    }
    // Sampling off ⇒ no exemplars anywhere.
    let snap = obs.snapshot();
    let h = snap.histogram("hris_engine_query_seconds", &[]).unwrap();
    assert!(h.exemplars.iter().all(Option::is_none));
}

#[test]
fn slo_burn_counters_partition_the_queries() {
    let (hris, queries) = scenario();
    // An unreachable threshold: every query lands on the good side.
    let engine = QueryEngine::with_config(
        &hris,
        EngineConfig::builder()
            .observability(true)
            .slow_query_threshold_s(1e9)
            .build()
            .unwrap(),
    );
    let _ = engine.infer_batch(&queries, 2);
    let snap = engine.observability().unwrap().snapshot();
    let n = queries.len() as u64;
    assert_eq!(snap.counter("hris_engine_slo_good_total"), Some(n));
    assert_eq!(snap.counter("hris_engine_slo_breach_total"), Some(0));

    // And the inverse: a vanishing threshold burns the whole budget.
    let engine = QueryEngine::with_config(
        &hris,
        EngineConfig::builder()
            .observability(true)
            .slow_query_threshold_s(1e-12)
            .build()
            .unwrap(),
    );
    let _ = engine.infer_batch(&queries, 2);
    let snap = engine.observability().unwrap().snapshot();
    assert_eq!(snap.counter("hris_engine_slo_good_total"), Some(0));
    assert_eq!(snap.counter("hris_engine_slo_breach_total"), Some(n));
}

#[test]
fn rolling_latency_windows_see_the_workload() {
    let (hris, queries) = scenario();
    let engine = QueryEngine::with_config(
        &hris,
        EngineConfig::builder().observability(true).build().unwrap(),
    );
    let _ = engine.infer_batch(&queries, 2);
    let obs = engine.observability().unwrap();
    let json = obs.rolling_latency_json();
    // Just-served queries are inside the 1m window: a positive rate and a
    // real p95 (not null).
    assert!(json.starts_with("{\"window_1m\":{\"rate_per_s\":"));
    assert!(!json.contains("\"p95\":null"), "fresh samples: {json}");
    for phase in ["candidates", "local", "global", "refine"] {
        assert!(json.contains(&format!("\"{phase}\":{{\"p95_1m\":")));
    }
}

#[test]
fn shared_registry_collects_engine_metrics() {
    let (hris, queries) = scenario();
    let registry = Arc::new(MetricsRegistry::new());
    // A caller-owned metric lives alongside the engine's.
    let own = registry.counter("my_harness_runs_total", "Harness runs.");
    own.inc();
    let engine = QueryEngine::with_registry(&hris, EngineConfig::default(), registry.clone());
    assert!(engine.config().obs.enabled, "with_registry implies obs");
    let _ = engine.infer_batch(&queries, 2);

    let snap = registry.snapshot();
    assert_eq!(snap.counter("my_harness_runs_total"), Some(1));
    assert_eq!(
        snap.counter("hris_engine_queries_total"),
        Some(queries.len() as u64)
    );
    // The exported text carries both families.
    let text = snap.to_prometheus();
    assert!(text.contains("my_harness_runs_total 1"));
    assert!(text.contains("# TYPE hris_engine_phase_seconds histogram"));
}
