//! End-to-end test of [`EngineHandle::serve_metrics`]: a live ingest
//! thread publishing epochs, a handle serving queries, and the telemetry
//! endpoints scraped over real TCP.
//!
//! Pins the three serving contracts:
//! * `/metrics` is byte-identical to [`hris_obs::export::prometheus_text`]
//!   over the same registry;
//! * `/healthz` flips to 503 when the served snapshot outlives
//!   `ObsOptions::staleness_bound_s`, and recovers on the next publish;
//! * `/varz` embeds the rolling-latency windows and `/debug/slow` filters
//!   to slow traces only.

use hris::{EngineConfig, EngineHandle, HrisParams};
use hris_obs::{export, MetricsRegistry};
use hris_roadnet::{generator, NetworkConfig, RoadNetwork};
use hris_traj::{ArchiveWriter, GpsPoint, TrajId, Trajectory, TrajectoryArchive};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn net() -> Arc<RoadNetwork> {
    Arc::new(generator::generate(&NetworkConfig::small(5)))
}

fn query(x0: f64) -> Trajectory {
    Trajectory::new(
        TrajId(0),
        (0..4)
            .map(|k| {
                GpsPoint::new(
                    hris_geo::Point::new(x0 + k as f64 * 400.0, 120.0),
                    k as f64 * 120.0,
                )
            })
            .collect(),
    )
}

/// Minimal HTTP/1.1 GET over a plain socket: status code + body.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn serve_metrics_requires_observability() {
    let handle = Arc::new(EngineHandle::new(
        net(),
        TrajectoryArchive::empty(),
        HrisParams::default(),
    ));
    let err = handle.serve_metrics("127.0.0.1:0").unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}

#[test]
fn live_handle_serves_telemetry_and_tracks_staleness() {
    let net = net();
    let registry = Arc::new(MetricsRegistry::new());
    let mut writer = ArchiveWriter::new(TrajectoryArchive::empty());
    writer.observe(&registry);
    let cfg = EngineConfig::builder()
        .observability(true)
        .span_sampling(1)
        .staleness_bound_s(0.5)
        .build()
        .unwrap();
    let handle = Arc::new(EngineHandle::live_with_registry(
        Arc::clone(&net),
        writer.reader(),
        HrisParams::default(),
        cfg,
        Arc::clone(&registry),
    ));
    let server = handle.serve_metrics("127.0.0.1:0").expect("bind server");
    let addr = server.addr();

    // Serve some traffic so every metric family has real values.
    let _ = handle.infer_batch_detailed(&[query(0.0), query(300.0)], 2);

    // Publish a fresh epoch *now* so the snapshot age is far below the
    // 0.5 s staleness bound when we scrape.
    writer.append(query(0.0));
    writer.publish();
    let (code, body) = http_get(addr, "/healthz");
    assert_eq!(code, 200, "fresh snapshot must be healthy: {body}");
    assert!(body.contains("\"snapshot_freshness\":\"ok\""), "{body}");

    // /metrics is byte-identical to the library exporter over the same
    // registry (the scrape's pre-hook wrote the watchdog gauge first, so
    // our snapshot sees the same value).
    let (code, scraped) = http_get(addr, "/metrics");
    assert_eq!(code, 200);
    assert_eq!(scraped, export::prometheus_text(&registry.snapshot()));
    assert!(scraped.contains("hris_snapshot_age_seconds"), "{scraped}");
    assert!(scraped.contains("hris_engine_queries_total 2"));
    assert!(scraped.contains("hris_ingest_appended_total 1"));

    // Let the snapshot outlive the bound without a publish: unhealthy.
    std::thread::sleep(Duration::from_millis(700));
    let (code, body) = http_get(addr, "/healthz");
    assert_eq!(code, 503, "stale snapshot must be unhealthy: {body}");
    assert!(body.contains("snapshot is"), "{body}");

    // The ingest thread catches up — health recovers with the new epoch.
    writer.append(query(600.0));
    writer.publish();
    let (code, _) = http_get(addr, "/healthz");
    assert_eq!(code, 200, "publish must restore freshness");

    // /varz embeds the rolling-latency windows next to the JSON metrics.
    let (code, varz) = http_get(addr, "/varz");
    assert_eq!(code, 200);
    assert!(
        varz.contains("\"engine_latency\":{\"window_1m\":"),
        "{varz}"
    );
    assert!(varz.contains("\"uptime_seconds\":"), "{varz}");

    // Every query was span-sampled (1-in-1): traces expose their trees.
    let (code, traces) = http_get(addr, "/debug/traces");
    assert_eq!(code, 200);
    assert!(traces.contains("\"root_span\":"), "{traces}");
    assert!(traces.contains("\"name\":\"query\""), "{traces}");

    // Nothing here was slow (default threshold 1s), so /debug/slow is empty.
    let (code, slow) = http_get(addr, "/debug/slow");
    assert_eq!(code, 200);
    assert!(slow.contains("\"traces\":[]"), "{slow}");

    server.shutdown();
}
