//! Golden test over the public API surface of the `hris` core crate.
//!
//! Extracts every `pub` declaration (modules, types, functions, fields,
//! re-exports — `pub(crate)` and `#[cfg(test)]` code excluded) from
//! `src/`, normalizes and sorts them, and compares against the checked-in
//! listing at `tests/golden/api_surface.txt`. Any surface change — adding,
//! removing, or re-signaturing a public item — fails this test until the
//! golden file is regenerated, which makes API changes show up in review as
//! a diff of the listing itself.
//!
//! To bless an intentional change:
//!
//! ```text
//! BLESS=1 cargo test -p hris --test api_surface
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

const GOLDEN: &str = "tests/golden/api_surface.txt";

fn source_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("read src dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            source_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Does this declaration introduce a named item (as opposed to a field)?
fn is_item(decl: &str) -> bool {
    let after_pub = decl.trim_start_matches("pub").trim_start();
    [
        "fn ",
        "struct ",
        "enum ",
        "trait ",
        "mod ",
        "use ",
        "type ",
        "const ",
        "static ",
        "unsafe fn ",
    ]
    .iter()
    .any(|kw| after_pub.starts_with(kw))
}

/// Extracts normalized `pub` declarations from one file.
fn extract(path: &Path) -> Vec<String> {
    let text = fs::read_to_string(path).expect("read source file");
    let mut decls = Vec::new();
    let mut lines = text.lines();
    while let Some(line) = lines.next() {
        let trimmed = line.trim_start();
        // Everything below `#[cfg(test)]` in this repo is the test module.
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if !trimmed.starts_with("pub ") || trimmed.starts_with("pub(") {
            continue;
        }
        // Collect the declaration until its terminator. Items end at the
        // first body brace or semicolon; struct fields are single lines
        // ending in a comma.
        let mut decl = trimmed.to_string();
        if is_item(&decl) {
            // `pub use a::{b, c};` keeps its brace list, so for a use the
            // semicolon is the terminator; everything else ends at the
            // first body brace or semicolon.
            let is_use = decl
                .trim_start_matches("pub")
                .trim_start()
                .starts_with("use ");
            let terminated = |d: &str| d.contains(';') || (!is_use && d.contains('{'));
            while !terminated(&decl) {
                let next = lines.next().expect("unterminated declaration");
                decl.push(' ');
                decl.push_str(next.trim());
            }
            let end = if is_use {
                decl.find(';').expect("use without semicolon")
            } else {
                match (decl.find(';'), decl.find('{')) {
                    (Some(semi), Some(brace)) => semi.min(brace),
                    (Some(semi), None) => semi,
                    (None, Some(brace)) => brace,
                    (None, None) => unreachable!("unterminated declaration"),
                }
            };
            decl.truncate(end);
        } else {
            // A public field.
            decl = decl.trim_end_matches(',').to_string();
        }
        let normalized = decl.split_whitespace().collect::<Vec<_>>().join(" ");
        decls.push(normalized.trim().to_string());
    }
    decls
}

fn current_surface() -> String {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let src = root.join("src");
    let mut files = Vec::new();
    source_files(&src, &mut files);
    let mut entries = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(&root)
            .expect("file under manifest dir")
            .to_string_lossy()
            .replace('\\', "/");
        for decl in extract(&file) {
            entries.push(format!("{rel}: {decl}"));
        }
    }
    entries.sort();
    let mut out = String::new();
    for e in &entries {
        writeln!(out, "{e}").unwrap();
    }
    out
}

#[test]
fn public_api_surface_matches_golden_file() {
    let got = current_surface();
    let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(GOLDEN);
    if std::env::var("BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        fs::create_dir_all(golden_path.parent().unwrap()).expect("create golden dir");
        fs::write(&golden_path, &got).expect("write golden file");
        return;
    }
    let want = fs::read_to_string(&golden_path).unwrap_or_else(|_| {
        panic!("missing {GOLDEN}; run `BLESS=1 cargo test -p hris --test api_surface` once")
    });
    if got != want {
        let got_set: std::collections::BTreeSet<&str> = got.lines().collect();
        let want_set: std::collections::BTreeSet<&str> = want.lines().collect();
        let added: Vec<&&str> = got_set.difference(&want_set).collect();
        let removed: Vec<&&str> = want_set.difference(&got_set).collect();
        panic!(
            "public API surface changed.\n\nadded ({}):\n{}\n\nremoved ({}):\n{}\n\n\
             If intentional, regenerate with `BLESS=1 cargo test -p hris --test api_surface` \
             and commit the golden file.",
            added.len(),
            added
                .iter()
                .map(|s| format!("  + {s}"))
                .collect::<Vec<_>>()
                .join("\n"),
            removed.len(),
            removed
                .iter()
                .map(|s| format!("  - {s}"))
                .collect::<Vec<_>>()
                .join("\n"),
        );
    }
}

/// The golden file itself must be sorted and normalized — guards against
/// hand edits that would make future diffs noisy.
#[test]
fn golden_file_is_sorted_and_normalized() {
    let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(GOLDEN);
    let Ok(text) = fs::read_to_string(&golden_path) else {
        return; // covered by the main test's "missing golden" panic
    };
    let lines: Vec<&str> = text.lines().collect();
    let mut sorted = lines.clone();
    sorted.sort_unstable();
    assert_eq!(
        lines, sorted,
        "{GOLDEN} is not sorted; regenerate with BLESS=1"
    );
    for l in &lines {
        assert_eq!(
            l.split_whitespace().collect::<Vec<_>>().join(" "),
            *l,
            "{GOLDEN} line not whitespace-normalized"
        );
    }
}
