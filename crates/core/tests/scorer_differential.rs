//! Differential guarantees of the `RouteScorer` seam.
//!
//! - [`hris::PaperScorer`] must be byte-identical to the deprecated free
//!   functions it replaced (`k_gri_with`, `brute_force_top_k_with`) — the
//!   API redesign moved code, it must not move a bit.
//! - With re-ranking off (the default) the engine must match the plain
//!   [`Hris`] pipeline byte for byte, and an all-zero [`RerankModel`] must
//!   be a byte-identical no-op (stable sort on an all-tie).
//! - An adversarial model must actually reorder — re-ranking is a
//!   permutation of the paper's top-K, never a rescoring.
//! - Feature extraction must be finite, deterministic, and invariant under
//!   power-of-two coordinate scaling where claimed.

use hris::local::{LocalInferenceResult, LocalStats, RefEdgeIndex};
use hris::reference::{RefKind, RefTrajectory, ReferenceSet};
use hris::{
    extract_features, EngineConfig, GlobalRoute, Hris, HrisParams, LearnedScorer, PaperScorer,
    PopularityModel, QueryEngine, RerankModel, RouteScorer, ScoredRoute, ScoringCtx,
};
use hris_geo::Point;
use hris_roadnet::{generator, NetworkConfig, RoadClass, RoadNetwork, Route, SegmentId};
use hris_traj::{resample_to_interval, SimConfig, Simulator, TrajId, Trajectory};
use proptest::prelude::*;

// ---------------------------------------------------------------- fixtures

/// Seeded simulator scenario: network, pipeline, low-rate queries.
fn scenario() -> (&'static RoadNetwork, Hris<'static>, Vec<Trajectory>) {
    let net: &'static _ = Box::leak(Box::new(generator::generate(&NetworkConfig::small(8))));
    let mut sim = Simulator::new(
        net,
        SimConfig {
            num_trips: 250,
            num_od_patterns: 10,
            min_trip_dist_m: 800.0,
            seed: 29,
            ..SimConfig::default()
        },
    );
    let (archive, routes) = sim.generate_archive();
    let mut queries = Vec::new();
    for (i, r) in routes.iter().step_by(routes.len() / 5).take(5).enumerate() {
        let pts = hris_traj::simulator::drive_route(net, r, 0.0, 20.0, 0.8).unwrap();
        queries.push(resample_to_interval(
            &Trajectory::new(TrajId(i as u32), pts),
            240.0,
        ));
    }
    let hris = Hris::new(net, archive, HrisParams::default());
    (net, hris, queries)
}

fn assert_bitwise(kind: &str, a: &[GlobalRoute], b: &[GlobalRoute]) {
    assert_eq!(a.len(), b.len(), "{kind}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.route, y.route, "{kind}: route {i}");
        assert_eq!(
            x.log_score.to_bits(),
            y.log_score.to_bits(),
            "{kind}: score bits {i}"
        );
        assert_eq!(x.local_indices, y.local_indices, "{kind}: indices {i}");
    }
}

fn assert_scored_bitwise(kind: &str, a: &[ScoredRoute], b: &[ScoredRoute]) {
    assert_eq!(a.len(), b.len(), "{kind}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.route, y.route, "{kind}: route {i}");
        assert_eq!(
            x.log_score.to_bits(),
            y.log_score.to_bits(),
            "{kind}: score bits {i}"
        );
    }
}

// ------------------------------------------------------------------ tests

/// The trait front-end reproduces the deprecated free functions bit for
/// bit on real local-inference output, for both popularity models and both
/// the DP and the brute-force oracle.
#[test]
#[allow(deprecated)]
fn paper_scorer_matches_legacy_free_functions() {
    let (net, hris, queries) = scenario();
    for q in &queries {
        let locals = hris.local_inference(q);
        let n = locals.len().min(5);
        let slice = &locals[..n];
        for model in [PopularityModel::ScaleFree, PopularityModel::PaperLiteral] {
            for k in [1usize, 3, 8] {
                let scorer = PaperScorer::new(0.05, model);
                let sctx = ScoringCtx::new(net, slice, k);
                assert_bitwise(
                    &format!("k_gri k={k} {model:?}"),
                    &scorer.top_k(&sctx),
                    &hris::k_gri_with(net, slice, k, 0.05, model),
                );
                assert_bitwise(
                    &format!("brute k={k} {model:?}"),
                    &scorer.top_k_brute_force(&sctx),
                    &hris::brute_force_top_k_with(net, slice, k, 0.05, model),
                );
            }
        }
    }
}

/// Re-ranking off (the default) and an all-zero model are both
/// byte-identical to the plain sequential pipeline — across the engine's
/// fast path and its instrumented path.
#[test]
fn default_off_and_zero_model_are_byte_identical() {
    let (_net, hris, queries) = scenario();
    let k = 4;
    let baseline: Vec<Vec<ScoredRoute>> = queries.iter().map(|q| hris.infer_routes(q, k)).collect();

    let default_cfg = QueryEngine::with_config(&hris, EngineConfig::default());
    let zero = QueryEngine::with_config(
        &hris,
        EngineConfig::builder()
            .rerank(RerankModel::zeroed())
            .build()
            .unwrap(),
    );
    let zero_observed = QueryEngine::with_config(
        &hris,
        EngineConfig::builder()
            .rerank(RerankModel::zeroed())
            .observability(true)
            .build()
            .unwrap(),
    );
    for (q, want) in queries.iter().zip(&baseline) {
        assert_scored_bitwise("default off", &default_cfg.infer_routes(q, k), want);
        assert_scored_bitwise("zero model", &zero.infer_routes(q, k), want);
        assert_scored_bitwise(
            "zero model observed",
            &zero_observed.infer_routes(q, k),
            want,
        );
    }
}

/// An adversarial model (strong negative weight on the paper's own
/// `log_score`) must reorder at least one top-K list — and every re-ranked
/// list must be a permutation of the paper list with `log_score` fields
/// untouched.
#[test]
fn adversarial_model_permutes_without_rescoring() {
    let (net, hris, queries) = scenario();
    let k = 6;
    // Small negative weight on log_score (the last feature): inverts the
    // paper order without saturating the sigmoid into an all-tie.
    let mut weights = vec![0.0; hris::scoring::NUM_FEATURES];
    *weights.last_mut().unwrap() = -0.02;
    let model = RerankModel::from_weights(weights, 0.0);
    let paper = PaperScorer::from_params(&HrisParams::default());

    let mut reordered_any = false;
    for q in &queries {
        let locals = hris.local_inference(q);
        let sctx = ScoringCtx::new(net, &locals, k);
        let want = paper.top_k(&sctx);
        let got = LearnedScorer::new(paper, &model).top_k(&sctx);
        assert_eq!(got.len(), want.len());

        // Same multiset of (route, score-bits): a permutation, not a rescore.
        let key = |g: &GlobalRoute| {
            (
                g.route.segments().to_vec(),
                g.log_score.to_bits(),
                g.local_indices.clone(),
            )
        };
        let mut a: Vec<_> = want.iter().map(key).collect();
        let mut b: Vec<_> = got.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "re-ranking must permute the paper top-K");

        // With distinct paper scores, -8·log_score inverts the order.
        let distinct = want
            .windows(2)
            .all(|w| w[0].log_score.to_bits() != w[1].log_score.to_bits());
        if distinct && want.len() > 1 {
            let inverted: Vec<_> = want.iter().rev().map(key).collect();
            let got_keys: Vec<_> = got.iter().map(key).collect();
            assert_eq!(got_keys, inverted, "negative log_score weight inverts");
        }
        if got.iter().map(key).ne(want.iter().map(key)) {
            reordered_any = true;
        }
    }
    assert!(
        reordered_any,
        "adversarial model never reordered any of {} queries",
        queries.len()
    );
}

/// A trained model travels losslessly through the engine-config JSON —
/// weights, bias, and standardization statistics all round-trip.
#[test]
fn rerank_config_round_trips_through_serde() {
    let mut weights = vec![0.25, -0.5, 1.5, 0.0, -2.0, 0.75, 3.0, -0.125];
    weights[3] = 1e-9;
    let mut model = RerankModel::from_weights(weights, 0.375);
    model.means = (0..hris::scoring::NUM_FEATURES)
        .map(|i| i as f64 * 0.1)
        .collect();
    model.scales = (0..hris::scoring::NUM_FEATURES)
        .map(|i| 1.0 + i as f64)
        .collect();
    assert!(model.is_valid());

    let cfg = EngineConfig::builder()
        .rerank(model.clone())
        .build()
        .unwrap();
    let json = serde_json::to_string(&cfg).unwrap();
    let back: EngineConfig = serde_json::from_str(&json).unwrap();
    assert!(back.rerank.enabled);
    assert_eq!(back.rerank.model.as_ref(), Some(&model));

    // Default stays default: no rerank block surprises.
    let default_json = serde_json::to_string(&EngineConfig::default()).unwrap();
    let default_back: EngineConfig = serde_json::from_str(&default_json).unwrap();
    assert!(!default_back.rerank.enabled);
    assert!(default_back.rerank.model.is_none());
}

// ----------------------------------------------- feature-invariant tests

/// Universe of synthetic local-inference results (mirrors the K-GRI
/// proptest universe: single-segment routes, random coverage and sources).
fn locals_strategy() -> impl Strategy<Value = Vec<LocalInferenceResult>> {
    let pair = prop::collection::vec(
        (
            0u32..40,
            prop::collection::vec(0usize..6, 0..5),
            prop::collection::vec(0u32..10, 1..3),
        ),
        1..5,
    );
    prop::collection::vec(pair, 1..5).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|routes| {
                let mut pairs_list: Vec<(SegmentId, usize)> = Vec::new();
                let mut refs: Vec<RefTrajectory> = Vec::new();
                let mut route_list = Vec::new();
                for (seg, cover, sources) in routes {
                    let seg = SegmentId(seg);
                    for &r in &cover {
                        while refs.len() <= r {
                            refs.push(RefTrajectory {
                                kind: RefKind::Simple,
                                sources: sources.iter().map(|&s| TrajId(s)).collect(),
                                points: vec![hris_traj::GpsPoint::new(Point::ORIGIN, 0.0)],
                            });
                        }
                        pairs_list.push((seg, r));
                    }
                    route_list.push(Route::new(vec![seg]));
                }
                LocalInferenceResult {
                    routes: route_list,
                    edge_index: RefEdgeIndex::from_pairs(pairs_list),
                    refs: ReferenceSet { refs },
                    stats: LocalStats::default(),
                }
            })
            .collect()
    })
}

fn small_net() -> RoadNetwork {
    generator::generate(&NetworkConfig {
        blocks_x: 4,
        blocks_y: 4,
        removal_frac: 0.0,
        oneway_frac: 0.0,
        jitter_frac: 0.0,
        curve_frac: 0.0,
        ..NetworkConfig::small(3)
    })
}

/// A manual zigzag corridor: `steps` unit moves (±x / ±y alternating by
/// `turns` mask), every coordinate multiplied by `scale`. Returns the net
/// and one local-inference result whose single route walks the corridor.
fn zigzag(
    steps: &[(f64, f64)],
    cover: &[usize],
    scale: f64,
) -> (RoadNetwork, LocalInferenceResult) {
    let mut b = RoadNetwork::builder();
    let mut x = 1_000.0;
    let mut y = 1_000.0;
    let mut prev = b.add_node(Point::new(x * scale, y * scale));
    let mut segs = Vec::new();
    for &(dx, dy) in steps {
        x += dx;
        y += dy;
        let next = b.add_node(Point::new(x * scale, y * scale));
        segs.push(b.add_straight_segment(prev, next, 13.9, RoadClass::Residential));
        prev = next;
    }
    let net = b.build();
    let route = Route::new(segs);
    let mut pairs_list = Vec::new();
    let mut refs = Vec::new();
    for &r in cover {
        while refs.len() <= r {
            refs.push(RefTrajectory {
                kind: RefKind::Simple,
                sources: vec![TrajId(refs.len() as u32)],
                points: vec![hris_traj::GpsPoint::new(Point::ORIGIN, 0.0)],
            });
        }
        for &s in route.segments() {
            pairs_list.push((s, r));
        }
    }
    let local = LocalInferenceResult {
        routes: vec![route],
        edge_index: RefEdgeIndex::from_pairs(pairs_list),
        refs: ReferenceSet { refs },
        stats: LocalStats::default(),
    };
    (net, local)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every feature of every top-K candidate is finite on arbitrary
    /// synthetic universes, and extraction is bitwise deterministic across
    /// repeated calls.
    #[test]
    fn features_are_finite_and_deterministic(locals in locals_strategy(), k in 1usize..6) {
        let net = small_net();
        let scorer = PaperScorer::new(0.05, PopularityModel::ScaleFree);
        let sctx = ScoringCtx::new(&net, &locals, k);
        for g in scorer.top_k(&sctx) {
            let f1 = extract_features(&sctx, &g, 0.05, PopularityModel::ScaleFree);
            let f2 = extract_features(&sctx, &g, 0.05, PopularityModel::ScaleFree);
            for (name, v) in hris::scoring::FEATURE_NAMES.iter().zip(f1.to_array()) {
                prop_assert!(v.is_finite(), "{name} = {v} not finite");
            }
            let bits1: Vec<u64> = f1.to_array().iter().map(|v| v.to_bits()).collect();
            let bits2: Vec<u64> = f2.to_array().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(bits1, bits2, "extraction must be deterministic");
        }
    }

    /// Scaling every coordinate by a power of two moves no feature bit:
    /// turn counting is dot/cross-based (no trig), support and popularity
    /// are counts, and the residual/ratio features divide two quantities
    /// that scale by exactly the same power of two.
    #[test]
    fn features_are_invariant_under_power_of_two_scaling(
        dirs in prop::collection::vec((0usize..4, 60.0..400.0f64), 2..9),
        cover in prop::collection::vec(0usize..5, 0..4),
        exp in 1u32..4,
    ) {
        let steps: Vec<(f64, f64)> = dirs
            .iter()
            .map(|&(d, m)| match d {
                0 => (m, 0.0),
                1 => (0.0, m),
                2 => (m, m),
                _ => (m, -m),
            })
            .collect();
        let scale = f64::from(2u32.pow(exp));
        let (net1, local1) = zigzag(&steps, &cover, 1.0);
        let (net2, local2) = zigzag(&steps, &cover, scale);
        let scorer = PaperScorer::new(0.05, PopularityModel::ScaleFree);

        let locals1 = [local1];
        let locals2 = [local2];
        let sctx1 = ScoringCtx::new(&net1, &locals1, 1);
        let sctx2 = ScoringCtx::new(&net2, &locals2, 1);
        let g1 = scorer.top_k(&sctx1);
        let g2 = scorer.top_k(&sctx2);
        prop_assert_eq!(g1.len(), 1);
        prop_assert_eq!(g2.len(), 1);

        let f1 = extract_features(&sctx1, &g1[0], 0.05, PopularityModel::ScaleFree);
        let f2 = extract_features(&sctx2, &g2[0], 0.05, PopularityModel::ScaleFree);
        for ((name, a), b) in hris::scoring::FEATURE_NAMES
            .iter()
            .zip(f1.to_array())
            .zip(f2.to_array())
        {
            prop_assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{} drifted under ×{} scaling: {} vs {}",
                name, scale, a, b
            );
        }
    }

    /// A zero model re-ranks any random universe into exactly the paper
    /// order (all-tie + stable sort), bit for bit.
    #[test]
    fn zero_model_is_identity_on_random_universes(locals in locals_strategy(), k in 1usize..6) {
        let net = small_net();
        let scorer = PaperScorer::new(0.05, PopularityModel::ScaleFree);
        let model = RerankModel::zeroed();
        let sctx = ScoringCtx::new(&net, &locals, k);
        let want = scorer.top_k(&sctx);
        let got = LearnedScorer::new(scorer, &model).top_k(&sctx);
        prop_assert_eq!(want.len(), got.len());
        for (w, g) in want.iter().zip(&got) {
            prop_assert_eq!(&w.route, &g.route);
            prop_assert_eq!(w.log_score.to_bits(), g.log_score.to_bits());
            prop_assert_eq!(&w.local_indices, &g.local_indices);
        }
    }
}
