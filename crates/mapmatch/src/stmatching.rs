//! ST-Matching (Lou, Zhang, Zheng, Xie, Wang, Huang — ACM GIS 2009).
//!
//! The strong baseline designed for low-sampling-rate trajectories:
//!
//! 1. **Spatial analysis.** Per candidate, an *observation probability*
//!    `N(0, σ²)` of its GPS distance; per candidate transition, a
//!    *transmission probability* `d_euclid / d_network` (straight-line gap
//!    over driving distance — near 1 when the pair is connected by an
//!    almost-straight road).
//! 2. **Temporal analysis.** Cosine similarity between the speed-limit
//!    vector of the connecting path and the average travel speed implied by
//!    the timestamps, discounting transitions that force implausible speeds.
//! 3. A candidate graph whose node weights are observation probabilities and
//!    edge weights `transmission × temporal`, solved for the highest-scoring
//!    path with dynamic programming.

use crate::candidates::{
    build_transitions, candidates_for, emission_prob, finish, MatchParams, PointCandidates,
    TransitionTable,
};
use crate::{MapMatcher, MatchResult};
use hris_roadnet::RoadNetwork;
use hris_traj::Trajectory;

/// The ST-Matching matcher.
#[derive(Debug, Clone, Default)]
pub struct StMatcher {
    /// Shared candidate parameters.
    pub params: MatchParams,
}

impl StMatcher {
    /// ST-Matching with explicit parameters.
    #[must_use]
    pub fn new(params: MatchParams) -> Self {
        StMatcher { params }
    }

    /// Temporal weight for a transition: cosine similarity between the
    /// path's speed-limit profile and the observed average speed.
    fn temporal(
        net: &RoadNetwork,
        cands: &[PointCandidates],
        i: usize,
        ai: usize,
        bi: usize,
        net_dist: f64,
    ) -> f64 {
        let dt = cands[i + 1].point.t - cands[i].point.t;
        if dt <= 0.0 || !net_dist.is_finite() {
            return 1.0; // no temporal information
        }
        let v_avg = net_dist / dt;
        // Use the speed limits of the two endpoint segments as the profile
        // (the full path is not materialised at scoring time; endpoints are
        // a faithful cheap proxy used by several reimplementations).
        let sa = net.segment(cands[i].cands[ai].segment).speed_limit;
        let sb = net.segment(cands[i + 1].cands[bi].segment).speed_limit;
        let num = sa * v_avg + sb * v_avg;
        let den = (sa * sa + sb * sb).sqrt() * (2.0 * v_avg * v_avg).sqrt();
        if den <= 0.0 {
            1.0
        } else {
            (num / den).clamp(0.0, 1.0)
        }
    }
}

impl MapMatcher for StMatcher {
    fn match_trajectory(&self, net: &RoadNetwork, traj: &Trajectory) -> Option<MatchResult> {
        let cands = candidates_for(net, traj, &self.params)?;
        let table = build_transitions(net, &cands);
        let chosen = solve_dp(
            net,
            &cands,
            &table,
            self.params.gps_sigma,
            |i, ai, bi, nd| Self::temporal(net, &cands, i, ai, bi, nd),
        );
        let matched = chosen
            .iter()
            .enumerate()
            .map(|(i, &ci)| cands[i].cands[ci])
            .collect();
        Some(finish(net, matched))
    }

    fn name(&self) -> &'static str {
        "ST-Matching"
    }
}

/// Shared candidate-graph DP: picks one candidate per point maximising
/// `Σ log(observation) + Σ log(transmission × temporal)`.
///
/// `temporal(i, ai, bi, net_dist)` supplies the extra edge factor; IVMM
/// reuses this with per-run weights.
pub(crate) fn solve_dp<F>(
    _net: &RoadNetwork,
    cands: &[PointCandidates],
    table: &TransitionTable,
    sigma: f64,
    temporal: F,
) -> Vec<usize>
where
    F: Fn(usize, usize, usize, f64) -> f64,
{
    solve_dp_weighted(cands, table, sigma, temporal, |_| 1.0, None)
}

/// The DP with per-point weights (IVMM's distance-weighted voting variant).
///
/// `point_weight(i)` scales point `i`'s log-scores; ST-Matching uses 1.
/// `fixed = Some((i, c))` constrains position `i` to candidate `c` (IVMM's
/// per-candidate voting runs).
pub(crate) fn solve_dp_weighted<F, W>(
    cands: &[PointCandidates],
    table: &TransitionTable,
    sigma: f64,
    temporal: F,
    point_weight: W,
    fixed: Option<(usize, usize)>,
) -> Vec<usize>
where
    F: Fn(usize, usize, usize, f64) -> f64,
    W: Fn(usize) -> f64,
{
    const NEG_BIG: f64 = -1.0e12;
    let n = cands.len();
    debug_assert!(n > 0);
    let allowed = |i: usize, c: usize| -> bool {
        match fixed {
            Some((fi, fc)) => fi != i || fc == c,
            None => true,
        }
    };
    // score[i][c] = best log-score of any assignment ending at candidate c.
    let mut score: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut back: Vec<Vec<usize>> = Vec::with_capacity(n);

    let obs = |i: usize, c: usize| -> f64 {
        let w = point_weight(i).max(1e-6);
        w * emission_prob(cands[i].cands[c].dist, sigma)
            .max(1e-300)
            .ln()
    };

    score.push(
        (0..cands[0].cands.len())
            .map(|c| if allowed(0, c) { obs(0, c) } else { NEG_BIG })
            .collect(),
    );
    back.push(vec![0; cands[0].cands.len()]);

    for i in 1..n {
        let straight = cands[i - 1].point.pos.dist(cands[i].point.pos);
        let mut row = vec![NEG_BIG; cands[i].cands.len()];
        let mut brow = vec![0usize; cands[i].cands.len()];
        for bi in 0..cands[i].cands.len() {
            if !allowed(i, bi) {
                continue;
            }
            for (ai, &prev_score) in score[i - 1].iter().enumerate() {
                if prev_score <= NEG_BIG {
                    continue;
                }
                let nd = table.dists[i - 1][ai][bi];
                // Transmission: straight-line over network distance, in (0, 1].
                let trans = if !nd.is_finite() {
                    1e-6 // unreachable: heavily discouraged but not fatal
                } else if nd <= f64::EPSILON {
                    1.0
                } else {
                    (straight / nd).clamp(1e-6, 1.0)
                };
                let temp = temporal(i - 1, ai, bi, nd).clamp(1e-6, 1.0);
                let w = point_weight(i).max(1e-6);
                let cand_score = prev_score + w * (trans.ln() + temp.ln());
                if cand_score > row[bi] {
                    row[bi] = cand_score;
                    brow[bi] = ai;
                }
            }
            row[bi] += obs(i, bi);
        }
        score.push(row);
        back.push(brow);
    }

    // Backtrack from the best final candidate.
    let mut chosen = vec![0usize; n];
    let last = score[n - 1]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    chosen[n - 1] = last;
    for i in (1..n).rev() {
        chosen[i - 1] = back[i][chosen[i]];
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use hris_roadnet::{generator, CostModel, NetworkConfig, NodeId};
    use hris_traj::{resample_to_interval, simulator, TrajId};

    fn net() -> RoadNetwork {
        generator::generate(&NetworkConfig {
            jitter_frac: 0.0,
            curve_frac: 0.0,
            removal_frac: 0.0,
            oneway_frac: 0.0,
            ..NetworkConfig::small(4)
        })
    }

    #[test]
    fn dense_trace_recovers_route() {
        let net = net();
        let path =
            hris_roadnet::shortest::shortest_path(&net, NodeId(0), NodeId(40), CostModel::Distance)
                .unwrap();
        let route = path.route();
        let pts = simulator::drive_route(&net, &route, 0.0, 15.0, 0.8).unwrap();
        let traj = Trajectory::new(TrajId(0), pts);
        let m = StMatcher::default().match_trajectory(&net, &traj).unwrap();
        let cov = m.route.common_length(&route, &net) / route.length(&net);
        assert!(cov > 0.9, "coverage {cov}");
        assert!(m.route.is_connected(&net));
    }

    #[test]
    fn sparse_trace_still_produces_connected_route() {
        let net = net();
        let path =
            hris_roadnet::shortest::shortest_path(&net, NodeId(0), NodeId(60), CostModel::Distance)
                .unwrap();
        let route = path.route();
        let pts = simulator::drive_route(&net, &route, 0.0, 10.0, 0.7).unwrap();
        let dense = Trajectory::new(TrajId(0), pts);
        let sparse = resample_to_interval(&dense, 120.0);
        assert!(sparse.len() >= 2);
        let m = StMatcher::default()
            .match_trajectory(&net, &sparse)
            .unwrap();
        assert!(m.route.is_connected(&net));
        // Shortest-path-driven matching on a shortest-path route: still good.
        let cov = m.route.common_length(&route, &net) / route.length(&net);
        assert!(cov > 0.6, "coverage {cov}");
    }

    #[test]
    fn dp_prefers_near_candidates_on_singleton() {
        let net = net();
        let seg = &net.segments()[0];
        let p = seg.geometry.point_at(seg.length / 2.0);
        let traj = Trajectory::new(TrajId(0), vec![hris_traj::GpsPoint::new(p, 0.0)]);
        let m = StMatcher::default().match_trajectory(&net, &traj).unwrap();
        assert!(m.matched[0].dist < 1.0);
    }
}
