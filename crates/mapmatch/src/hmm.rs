//! HMM map matching (Newson & Krumm, ACM GIS 2009).
//!
//! Not one of the paper's three competitors, but *the* industry-standard
//! matcher (OSRM, Valhalla, barefoot all descend from it) — included so the
//! library is complete as a map-matching toolbox and so experiments can
//! sanity-check the baselines against a fourth, independent formulation.
//!
//! Model:
//! - **Emission**: GPS error is Gaussian — `p(z|c) ∝ exp(−½ (d/σ)²)` with
//!   `d` the great-circle (here planar) distance from the observation to
//!   the candidate.
//! - **Transition**: the difference between the driving distance and the
//!   straight-line distance between consecutive candidates is exponential,
//!   `p ∝ exp(−|d_route − d_line| / β)` — matched routes rarely detour.
//! - Decoded with Viterbi over the candidate lattice.

use crate::candidates::{build_transitions, candidates_for, finish, MatchParams};
use crate::{MapMatcher, MatchResult};
use hris_roadnet::RoadNetwork;
use hris_traj::Trajectory;

/// The Newson–Krumm HMM matcher.
#[derive(Debug, Clone)]
pub struct HmmMatcher {
    /// Shared candidate parameters (`gps_sigma` is the emission σ).
    pub params: MatchParams,
    /// Transition decay `β`, metres: how much route/straight-line mismatch
    /// one standard "detour" represents. Newson & Krumm fit ≈ 5–10 m per
    /// sampling-interval-second on their data; a flat 200 m works well at
    /// minute-scale intervals.
    pub beta_m: f64,
}

impl Default for HmmMatcher {
    fn default() -> Self {
        HmmMatcher {
            params: MatchParams::default(),
            beta_m: 200.0,
        }
    }
}

impl MapMatcher for HmmMatcher {
    fn match_trajectory(&self, net: &RoadNetwork, traj: &Trajectory) -> Option<MatchResult> {
        let cands = candidates_for(net, traj, &self.params)?;
        let table = build_transitions(net, &cands);
        let n = cands.len();
        let sigma = self.params.gps_sigma;
        const NEG_BIG: f64 = -1.0e12;

        let emit = |i: usize, c: usize| -> f64 {
            let z = cands[i].cands[c].dist / sigma;
            -0.5 * z * z
        };

        let mut score: Vec<f64> = (0..cands[0].cands.len()).map(|c| emit(0, c)).collect();
        let mut back: Vec<Vec<usize>> = vec![vec![0; cands[0].cands.len()]];

        for i in 1..n {
            let straight = cands[i - 1].point.pos.dist(cands[i].point.pos);
            let mut next = vec![NEG_BIG; cands[i].cands.len()];
            let mut brow = vec![0usize; cands[i].cands.len()];
            for bi in 0..cands[i].cands.len() {
                for (ai, &prev_score) in score.iter().enumerate() {
                    let nd = table.dists[i - 1][ai][bi];
                    let log_trans = if nd.is_finite() {
                        -(nd - straight).abs() / self.beta_m
                    } else {
                        -50.0 // unreachable: strongly but not infinitely penalised
                    };
                    let s = prev_score + log_trans;
                    if s > next[bi] {
                        next[bi] = s;
                        brow[bi] = ai;
                    }
                }
                next[bi] += emit(i, bi);
            }
            score = next;
            back.push(brow);
        }

        let mut chosen = vec![0usize; n];
        chosen[n - 1] = score
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        for i in (1..n).rev() {
            chosen[i - 1] = back[i][chosen[i]];
        }
        let matched = chosen
            .iter()
            .enumerate()
            .map(|(i, &c)| cands[i].cands[c])
            .collect();
        Some(finish(net, matched))
    }

    fn name(&self) -> &'static str {
        "HMM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hris_roadnet::{generator, CostModel, NetworkConfig, NodeId};
    use hris_traj::{resample_to_interval, simulator, TrajId};

    fn net() -> RoadNetwork {
        generator::generate(&NetworkConfig {
            jitter_frac: 0.0,
            curve_frac: 0.0,
            removal_frac: 0.0,
            oneway_frac: 0.0,
            ..NetworkConfig::small(9)
        })
    }

    #[test]
    fn dense_trace_recovers_route() {
        let net = net();
        let path =
            hris_roadnet::shortest::shortest_path(&net, NodeId(0), NodeId(44), CostModel::Distance)
                .unwrap();
        let route = path.route();
        let pts = simulator::drive_route(&net, &route, 0.0, 15.0, 0.8).unwrap();
        let traj = Trajectory::new(TrajId(0), pts);
        let m = HmmMatcher::default().match_trajectory(&net, &traj).unwrap();
        let cov = m.route.common_length(&route, &net) / route.length(&net);
        assert!(cov > 0.9, "coverage {cov}");
        assert!(m.route.is_connected(&net));
    }

    #[test]
    fn sparse_trace_stays_connected() {
        let net = net();
        let path =
            hris_roadnet::shortest::shortest_path(&net, NodeId(3), NodeId(70), CostModel::Distance)
                .unwrap();
        let pts = simulator::drive_route(&net, &path.route(), 0.0, 10.0, 0.75).unwrap();
        let sparse = resample_to_interval(&Trajectory::new(TrajId(0), pts), 240.0);
        let m = HmmMatcher::default()
            .match_trajectory(&net, &sparse)
            .unwrap();
        assert!(m.route.is_connected(&net));
        assert_eq!(m.matched.len(), sparse.len());
    }

    #[test]
    fn empty_trajectory_is_none() {
        let net = net();
        let empty = Trajectory::new(TrajId(0), vec![]);
        assert!(HmmMatcher::default()
            .match_trajectory(&net, &empty)
            .is_none());
    }

    #[test]
    fn prefers_continuous_route_over_nearest_snap() {
        // A noisy point pulled toward a parallel street must not derail the
        // match when the transitions say otherwise.
        let net = net();
        let path =
            hris_roadnet::shortest::shortest_path(&net, NodeId(0), NodeId(20), CostModel::Distance)
                .unwrap();
        let route = path.route();
        let mut pts = simulator::drive_route(&net, &route, 0.0, 20.0, 0.8).unwrap();
        // Push one midpoint 70 m sideways.
        if pts.len() > 4 {
            let k = pts.len() / 2;
            pts[k].pos = hris_geo::Point::new(pts[k].pos.x, pts[k].pos.y + 70.0);
        }
        let traj = Trajectory::new(TrajId(0), pts);
        let m = HmmMatcher::default().match_trajectory(&net, &traj).unwrap();
        let cov = m.route.common_length(&route, &net) / route.length(&net);
        assert!(cov > 0.7, "coverage {cov}");
    }
}
