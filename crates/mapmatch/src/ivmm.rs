//! IVMM — Interactive Voting-based Map Matching (Yuan, Zheng, Zhang, Xie,
//! Sun — MDM 2010).
//!
//! IVMM starts from ST-Matching's static candidate graph, then models the
//! *mutual influence* between GPS points: the influence of point `j` on the
//! match of point `i` decays with their distance,
//! `w(i, j) = exp(-d²(p_i, p_j) / β²)`.
//!
//! For every point `i` and every candidate `c` of `i`, IVMM solves the
//! weighted candidate-graph DP *constrained to pass through `c`*, with all
//! log-scores scaled by `w(i, ·)`. The optimal assignment of that run casts
//! one vote for each selected candidate. After all `n × k` runs, each
//! position keeps its most-voted candidate (ties broken by proximity), and
//! the final route threads those winners.

use crate::candidates::{build_transitions, candidates_for, finish, MatchParams};
use crate::stmatching::solve_dp_weighted;
use crate::{MapMatcher, MatchResult};
use hris_roadnet::RoadNetwork;
use hris_traj::Trajectory;

/// The IVMM matcher.
#[derive(Debug, Clone)]
pub struct IvmmMatcher {
    /// Shared candidate parameters.
    pub params: MatchParams,
    /// Mutual-influence bandwidth `β`, metres. Influence between points
    /// further apart than ~`2β` is negligible.
    pub beta_m: f64,
}

impl Default for IvmmMatcher {
    fn default() -> Self {
        IvmmMatcher {
            params: MatchParams::default(),
            beta_m: 7_000.0,
        }
    }
}

impl MapMatcher for IvmmMatcher {
    fn match_trajectory(&self, net: &RoadNetwork, traj: &Trajectory) -> Option<MatchResult> {
        let cands = candidates_for(net, traj, &self.params)?;
        let table = build_transitions(net, &cands);
        let n = cands.len();
        let sigma = self.params.gps_sigma;

        // Temporal factor identical to ST-Matching's endpoint proxy.
        let temporal = |i: usize, ai: usize, bi: usize, nd: f64| -> f64 {
            let dt = cands[i + 1].point.t - cands[i].point.t;
            if dt <= 0.0 || !nd.is_finite() {
                return 1.0;
            }
            let v_avg = nd / dt;
            let sa = net.segment(cands[i].cands[ai].segment).speed_limit;
            let sb = net.segment(cands[i + 1].cands[bi].segment).speed_limit;
            let num = (sa + sb) * v_avg;
            let den = (sa * sa + sb * sb).sqrt() * (2.0 * v_avg * v_avg).sqrt();
            if den <= 0.0 {
                1.0
            } else {
                (num / den).clamp(0.0, 1.0)
            }
        };

        // Voting rounds.
        let mut votes: Vec<Vec<usize>> = cands.iter().map(|pc| vec![0; pc.cands.len()]).collect();
        let beta_sq = self.beta_m * self.beta_m;
        for i in 0..n {
            let pi = cands[i].point.pos;
            let weight = |j: usize| {
                let d = cands[j].point.pos.dist(pi);
                (-d * d / beta_sq).exp().max(1e-6)
            };
            for c in 0..cands[i].cands.len() {
                let assignment =
                    solve_dp_weighted(&cands, &table, sigma, temporal, weight, Some((i, c)));
                for (j, &cj) in assignment.iter().enumerate() {
                    votes[j][cj] += 1;
                }
            }
        }

        // Winners: most votes, ties by smaller GPS distance.
        let matched: Vec<_> = (0..n)
            .map(|j| {
                let best = (0..cands[j].cands.len())
                    .max_by(|&a, &b| {
                        votes[j][a]
                            .cmp(&votes[j][b])
                            .then(cands[j].cands[b].dist.total_cmp(&cands[j].cands[a].dist))
                    })
                    .unwrap_or(0);
                cands[j].cands[best]
            })
            .collect();
        Some(finish(net, matched))
    }

    fn name(&self) -> &'static str {
        "IVMM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hris_roadnet::{generator, CostModel, NetworkConfig, NodeId};
    use hris_traj::{resample_to_interval, simulator, TrajId};

    fn net() -> RoadNetwork {
        generator::generate(&NetworkConfig {
            jitter_frac: 0.0,
            curve_frac: 0.0,
            removal_frac: 0.0,
            oneway_frac: 0.0,
            ..NetworkConfig::small(6)
        })
    }

    #[test]
    fn dense_trace_recovers_route() {
        let net = net();
        let path =
            hris_roadnet::shortest::shortest_path(&net, NodeId(2), NodeId(50), CostModel::Distance)
                .unwrap();
        let route = path.route();
        let pts = simulator::drive_route(&net, &route, 0.0, 20.0, 0.8).unwrap();
        let traj = Trajectory::new(TrajId(0), pts);
        let m = IvmmMatcher::default()
            .match_trajectory(&net, &traj)
            .unwrap();
        let cov = m.route.common_length(&route, &net) / route.length(&net);
        assert!(cov > 0.85, "coverage {cov}");
    }

    #[test]
    fn sparse_trace_connected() {
        let net = net();
        let path =
            hris_roadnet::shortest::shortest_path(&net, NodeId(0), NodeId(70), CostModel::Distance)
                .unwrap();
        let route = path.route();
        let pts = simulator::drive_route(&net, &route, 0.0, 10.0, 0.75).unwrap();
        let dense = Trajectory::new(TrajId(0), pts);
        let sparse = resample_to_interval(&dense, 180.0);
        let m = IvmmMatcher::default()
            .match_trajectory(&net, &sparse)
            .unwrap();
        assert!(m.route.is_connected(&net));
        assert_eq!(m.matched.len(), sparse.len());
    }

    #[test]
    fn votes_give_every_position_a_winner() {
        let net = net();
        let path =
            hris_roadnet::shortest::shortest_path(&net, NodeId(1), NodeId(25), CostModel::Distance)
                .unwrap();
        let pts = simulator::drive_route(&net, &path.route(), 0.0, 60.0, 0.8).unwrap();
        let traj = Trajectory::new(TrajId(0), pts);
        let m = IvmmMatcher::default()
            .match_trajectory(&net, &traj)
            .unwrap();
        assert_eq!(m.matched.len(), traj.len());
    }
}
