//! Map-matching algorithms: the three baselines the paper compares against,
//! plus the shared candidate/transition machinery they (and HRIS itself)
//! build on.
//!
//! - [`IncrementalMatcher`] — the geometric/topological incremental matcher
//!   of Greenfeld (2002): match each point given only the previous match.
//! - [`StMatcher`] — ST-Matching (Lou et al., ACM GIS 2009): a candidate
//!   graph scored by spatial (observation × transmission) and temporal
//!   analysis, solved by dynamic programming.
//! - [`IvmmMatcher`] — IVMM (Yuan et al., MDM 2010): ST-Matching's static
//!   scores re-weighted by inter-point mutual influence, with an interactive
//!   voting round per point.
//!
//! All matchers implement [`MapMatcher`] and produce a [`MatchResult`]
//! (matched candidate per point + a connected [`Route`]).

#![warn(missing_docs)]

pub mod candidates;
pub mod hmm;
pub mod incremental;
pub mod ivmm;
pub mod stmatching;

pub use candidates::{
    build_transitions, candidates_for, emission_prob, network_dist, reconstruct_route, MatchParams,
    PointCandidates, TransitionTable,
};
pub use hmm::HmmMatcher;
pub use incremental::IncrementalMatcher;
pub use ivmm::IvmmMatcher;
pub use stmatching::StMatcher;

use hris_roadnet::network::CandidateEdge;
use hris_roadnet::{RoadNetwork, Route};
use hris_traj::Trajectory;

/// Output of a map-matching run.
#[derive(Debug, Clone)]
pub struct MatchResult {
    /// The matched candidate edge for each input point that had candidates.
    pub matched: Vec<CandidateEdge>,
    /// The reconstructed connected route through the matched edges.
    pub route: Route,
}

/// Common interface of all map-matching algorithms.
pub trait MapMatcher {
    /// Matches `traj` onto `net`.
    ///
    /// Returns `None` when no point of the trajectory has any candidate edge
    /// (e.g. an empty network or a trajectory entirely off the map).
    fn match_trajectory(&self, net: &RoadNetwork, traj: &Trajectory) -> Option<MatchResult>;

    /// Human-readable algorithm name (for experiment tables).
    fn name(&self) -> &'static str;
}
