//! Shared machinery: candidate preparation, emission probabilities,
//! network distances between candidates, and route reconstruction.

use crate::MatchResult;
use hris_roadnet::network::CandidateEdge;
use hris_roadnet::shortest::{route_between_segments, shortest_costs_within};
use hris_roadnet::{CostModel, RoadNetwork, Route};
use hris_traj::{GpsPoint, Trajectory};
use serde::{Deserialize, Serialize};

/// Parameters shared by all matchers.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MatchParams {
    /// Candidate search radius `ε` (Definition 5), metres.
    pub candidate_radius: f64,
    /// Keep at most this many candidates per point (nearest first).
    pub max_candidates: usize,
    /// GPS noise standard deviation for the emission model, metres.
    pub gps_sigma: f64,
}

impl Default for MatchParams {
    fn default() -> Self {
        MatchParams {
            candidate_radius: 60.0,
            max_candidates: 5,
            gps_sigma: 20.0,
        }
    }
}

/// Candidates of one GPS point.
#[derive(Debug, Clone)]
pub struct PointCandidates {
    /// The observed point.
    pub point: GpsPoint,
    /// Candidate edges, nearest first; never empty (falls back to the
    /// globally nearest segment when nothing is within the radius).
    pub cands: Vec<CandidateEdge>,
}

/// Prepares candidates for every point of `traj`.
///
/// Points with no segment within `params.candidate_radius` fall back to the
/// network-wide nearest segment (standard practice; dropping points would
/// silently shorten the matched route). Returns `None` for an empty network
/// or an empty trajectory.
#[must_use]
pub fn candidates_for(
    net: &RoadNetwork,
    traj: &Trajectory,
    params: &MatchParams,
) -> Option<Vec<PointCandidates>> {
    if traj.is_empty() || net.num_segments() == 0 {
        return None;
    }
    let mut out = Vec::with_capacity(traj.len());
    for p in &traj.points {
        let mut cands = net.candidate_edges(p.pos, params.candidate_radius);
        if cands.is_empty() {
            cands = vec![net.nearest_segment(p.pos)?];
        }
        cands.truncate(params.max_candidates.max(1));
        out.push(PointCandidates { point: *p, cands });
    }
    Some(out)
}

/// Gaussian emission probability of observing a point `dist` metres from
/// its true road position.
#[inline]
#[must_use]
pub fn emission_prob(dist: f64, sigma: f64) -> f64 {
    let z = dist / sigma;
    (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
}

/// Network (driving) distance from candidate `a` to candidate `b`, metres.
///
/// Accounts for the along-segment offsets of both projections. Returns
/// `f64::INFINITY` when `b` is unreachable from `a`.
#[must_use]
pub fn network_dist(net: &RoadNetwork, a: &CandidateEdge, b: &CandidateEdge) -> f64 {
    if a.segment == b.segment && b.offset >= a.offset {
        return b.offset - a.offset;
    }
    let seg_a = net.segment(a.segment);
    let seg_b = net.segment(b.segment);
    let remaining = seg_a.length - a.offset;
    let bridge =
        hris_roadnet::shortest::shortest_path(net, seg_a.to, seg_b.from, CostModel::Distance)
            .map_or(f64::INFINITY, |p| p.cost);
    remaining + bridge + b.offset
}

/// Pairwise network distances between consecutive points' candidates.
///
/// `dists[i][a][b]` is the driving distance from candidate `a` of point `i`
/// to candidate `b` of point `i + 1`.
#[derive(Debug, Clone)]
pub struct TransitionTable {
    /// One matrix per consecutive point pair.
    pub dists: Vec<Vec<Vec<f64>>>,
}

/// Builds the transition table with one bounded Dijkstra per candidate.
///
/// The expansion bound is four times the straight-line gap plus a couple of
/// kilometres — generous enough for real detours while keeping the search
/// local.
#[must_use]
pub fn build_transitions(net: &RoadNetwork, cands: &[PointCandidates]) -> TransitionTable {
    let mut dists = Vec::with_capacity(cands.len().saturating_sub(1));
    for w in cands.windows(2) {
        let (cur, next) = (&w[0], &w[1]);
        let gap = cur.point.pos.dist(next.point.pos);
        let bound = gap * 4.0 + 2_000.0;
        let mut matrix = vec![vec![f64::INFINITY; next.cands.len()]; cur.cands.len()];
        for (ai, a) in cur.cands.iter().enumerate() {
            let seg_a = net.segment(a.segment);
            // Same-segment forward shortcut.
            for (bi, b) in next.cands.iter().enumerate() {
                if a.segment == b.segment && b.offset >= a.offset {
                    matrix[ai][bi] = b.offset - a.offset;
                }
            }
            // One bounded Dijkstra from the segment head covers every target.
            let remaining = seg_a.length - a.offset;
            let costs = shortest_costs_within(net, seg_a.to, CostModel::Distance, bound);
            for (bi, b) in next.cands.iter().enumerate() {
                let seg_b_from = net.segment(b.segment).from;
                if let Some(&(_, c)) = costs.iter().find(|&&(n, _)| n == seg_b_from) {
                    let d = remaining + c + b.offset;
                    if d < matrix[ai][bi] {
                        matrix[ai][bi] = d;
                    }
                }
            }
        }
        dists.push(matrix);
    }
    TransitionTable { dists }
}

/// Reconstructs a connected route through a sequence of matched candidates.
///
/// Consecutive matches on the same segment are merged; otherwise the gap is
/// bridged with a network shortest path. Unreachable joints fall back to
/// simply appending the next segment (the accuracy metric then penalises the
/// discontinuity, as it should).
#[must_use]
pub fn reconstruct_route(net: &RoadNetwork, matched: &[CandidateEdge]) -> Route {
    let mut route = Route::empty();
    for m in matched {
        let last = route.segments().last().copied();
        match last {
            None => route.push(m.segment),
            Some(prev) if prev == m.segment => {}
            Some(prev) => {
                match route_between_segments(net, prev, m.segment, CostModel::Distance) {
                    Some(bridge) => {
                        // `bridge` starts with `prev`; append the rest.
                        for &s in &bridge.segments()[1..] {
                            route.push(s);
                        }
                    }
                    None => route.push(m.segment),
                }
            }
        }
    }
    dedup_cycles(route)
}

/// Removes immediate backtracking (`… a b a …` with `b` being `a`'s reverse)
/// artefacts that bridging can introduce at the route level; keeps the first
/// occurrence. Conservative: only strips exact consecutive duplicates.
fn dedup_cycles(route: Route) -> Route {
    let mut out: Vec<hris_roadnet::SegmentId> = Vec::with_capacity(route.len());
    for &s in route.segments() {
        if out.last() == Some(&s) {
            continue;
        }
        out.push(s);
    }
    Route::new(out)
}

/// Packages matched candidates into a [`MatchResult`].
#[must_use]
pub fn finish(net: &RoadNetwork, matched: Vec<CandidateEdge>) -> MatchResult {
    let route = reconstruct_route(net, &matched);
    MatchResult { matched, route }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hris_geo::Point;
    use hris_roadnet::{generator, NetworkConfig, NodeId};
    use hris_traj::TrajId;

    fn net() -> RoadNetwork {
        generator::generate(&NetworkConfig {
            jitter_frac: 0.0,
            curve_frac: 0.0,
            removal_frac: 0.0,
            oneway_frac: 0.0,
            ..NetworkConfig::small(1)
        })
    }

    #[test]
    fn candidates_within_radius_sorted() {
        let net = net();
        let node = net.node(NodeId(0));
        let traj = Trajectory::new(
            TrajId(0),
            vec![GpsPoint::new(Point::new(node.x + 10.0, node.y + 5.0), 0.0)],
        );
        let cands = candidates_for(&net, &traj, &MatchParams::default()).unwrap();
        assert_eq!(cands.len(), 1);
        assert!(!cands[0].cands.is_empty());
        for w in cands[0].cands.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        assert!(cands[0].cands.len() <= MatchParams::default().max_candidates);
    }

    #[test]
    fn far_point_falls_back_to_nearest() {
        let net = net();
        let bbox = net.bbox();
        let far = Point::new(bbox.max.x + 10_000.0, bbox.max.y + 10_000.0);
        let traj = Trajectory::new(TrajId(0), vec![GpsPoint::new(far, 0.0)]);
        let cands = candidates_for(&net, &traj, &MatchParams::default()).unwrap();
        assert_eq!(
            cands[0].cands.len(),
            1,
            "fallback keeps exactly the nearest"
        );
    }

    #[test]
    fn empty_inputs_return_none() {
        let net = net();
        let empty = Trajectory::new(TrajId(0), vec![]);
        assert!(candidates_for(&net, &empty, &MatchParams::default()).is_none());
    }

    #[test]
    fn emission_prob_decreases_with_distance() {
        let p0 = emission_prob(0.0, 20.0);
        let p20 = emission_prob(20.0, 20.0);
        let p60 = emission_prob(60.0, 20.0);
        assert!(p0 > p20 && p20 > p60);
        assert!(p60 > 0.0);
    }

    #[test]
    fn network_dist_same_segment_forward() {
        let net = net();
        let seg = &net.segments()[0];
        let a = CandidateEdge {
            segment: seg.id,
            dist: 0.0,
            closest: seg.geometry.point_at(10.0),
            offset: 10.0,
        };
        let b = CandidateEdge {
            segment: seg.id,
            dist: 0.0,
            closest: seg.geometry.point_at(50.0),
            offset: 50.0,
        };
        assert!((network_dist(&net, &a, &b) - 40.0).abs() < 1e-9);
        // Backwards on the same directed segment requires going around.
        assert!(network_dist(&net, &b, &a) > 40.0);
    }

    #[test]
    fn transition_table_agrees_with_network_dist() {
        let net = net();
        // Two points ~one block apart on the grid.
        let a = net.node(NodeId(0));
        let b = net.node(NodeId(1));
        let traj = Trajectory::new(
            TrajId(0),
            vec![
                GpsPoint::new(Point::new(a.x + 5.0, a.y + 5.0), 0.0),
                GpsPoint::new(Point::new(b.x + 5.0, b.y + 5.0), 60.0),
            ],
        );
        let cands = candidates_for(&net, &traj, &MatchParams::default()).unwrap();
        let table = build_transitions(&net, &cands);
        assert_eq!(table.dists.len(), 1);
        for (ai, a) in cands[0].cands.iter().enumerate() {
            for (bi, b) in cands[1].cands.iter().enumerate() {
                let direct = network_dist(&net, a, b);
                let tabled = table.dists[0][ai][bi];
                if direct.is_finite() && tabled.is_finite() {
                    assert!(
                        (direct - tabled).abs() < 1e-6,
                        "ai={ai} bi={bi}: {direct} vs {tabled}"
                    );
                }
            }
        }
    }

    #[test]
    fn reconstruct_route_bridges_gaps() {
        let net = net();
        // Take two segments a couple of hops apart, reconstruct.
        let r = net.segments()[0].id;
        let mid = net.next_segments(r)[0];
        let s = net.next_segments(mid)[0];
        let a = CandidateEdge {
            segment: r,
            dist: 0.0,
            closest: net.segment(r).geometry.start(),
            offset: 0.0,
        };
        let b = CandidateEdge {
            segment: s,
            dist: 0.0,
            closest: net.segment(s).geometry.start(),
            offset: 0.0,
        };
        let route = reconstruct_route(&net, &[a, b]);
        assert!(route.is_connected(&net));
        assert_eq!(route.segments().first(), Some(&r));
        assert_eq!(route.segments().last(), Some(&s));
    }

    #[test]
    fn reconstruct_route_merges_same_segment() {
        let net = net();
        let r = net.segments()[0].id;
        let c = CandidateEdge {
            segment: r,
            dist: 0.0,
            closest: net.segment(r).geometry.start(),
            offset: 0.0,
        };
        let route = reconstruct_route(&net, &[c, c, c]);
        assert_eq!(route.segments(), &[r]);
    }
}
