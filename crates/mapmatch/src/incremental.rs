//! Incremental map matching (Greenfeld, TRB 2002 style).
//!
//! Matches each point using only geometric information and the previous
//! point's match: proximity, route continuity (network detour from the
//! previous match) and heading agreement. This is the paper's weakest
//! baseline — it has no look-ahead, so a single bad match derails the rest
//! of the route, which is exactly the failure mode Figure 8 shows at low
//! sampling rates.

use crate::candidates::{build_transitions, candidates_for, finish, MatchParams};
use crate::{MapMatcher, MatchResult};
use hris_roadnet::RoadNetwork;
use hris_traj::Trajectory;

/// The incremental matcher.
#[derive(Debug, Clone)]
pub struct IncrementalMatcher {
    /// Shared candidate parameters.
    pub params: MatchParams,
    /// Weight of the detour term (network distance minus straight-line
    /// distance), dimensionless.
    pub detour_weight: f64,
    /// Weight of the heading-disagreement term, metres at full disagreement.
    pub heading_weight: f64,
}

impl Default for IncrementalMatcher {
    fn default() -> Self {
        IncrementalMatcher {
            params: MatchParams::default(),
            detour_weight: 0.4,
            heading_weight: 30.0,
        }
    }
}

impl MapMatcher for IncrementalMatcher {
    fn match_trajectory(&self, net: &RoadNetwork, traj: &Trajectory) -> Option<MatchResult> {
        let cands = candidates_for(net, traj, &self.params)?;
        let table = build_transitions(net, &cands);

        let mut chosen: Vec<usize> = Vec::with_capacity(cands.len());
        // First point: nearest candidate.
        chosen.push(0); // candidates are sorted nearest-first

        for i in 1..cands.len() {
            let prev_idx = chosen[i - 1];
            let prev_pos = cands[i - 1].point.pos;
            let cur_pos = cands[i].point.pos;
            let move_dir = (cur_pos - prev_pos).normalized();
            let euclid = prev_pos.dist(cur_pos);

            let mut best = 0usize;
            let mut best_cost = f64::INFINITY;
            for (ci, c) in cands[i].cands.iter().enumerate() {
                let net_d = table.dists[i - 1][prev_idx][ci];
                let detour = if net_d.is_finite() {
                    (net_d - euclid).max(0.0)
                } else {
                    // Unreachable from the previous match: heavy penalty but
                    // still allow it (the previous match may be the mistake).
                    10_000.0
                };
                let heading = match (move_dir, net.segment(c.segment).geometry.vertices()) {
                    (Some(dir), verts) if verts.len() >= 2 => {
                        let seg_dir = (verts[verts.len() - 1] - verts[0]).normalized();
                        seg_dir.map_or(0.5, |sd| (1.0 - dir.dot(sd)) / 2.0)
                    }
                    _ => 0.5,
                };
                let cost = c.dist + self.detour_weight * detour + self.heading_weight * heading;
                if cost < best_cost {
                    best_cost = cost;
                    best = ci;
                }
            }
            chosen.push(best);
        }

        let matched = chosen
            .iter()
            .enumerate()
            .map(|(i, &ci)| cands[i].cands[ci])
            .collect();
        Some(finish(net, matched))
    }

    fn name(&self) -> &'static str {
        "Incremental"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hris_geo::Point;
    use hris_roadnet::{generator, CostModel, NetworkConfig, NodeId};
    use hris_traj::{simulator, GpsPoint, TrajId};

    fn net() -> RoadNetwork {
        generator::generate(&NetworkConfig {
            jitter_frac: 0.0,
            curve_frac: 0.0,
            removal_frac: 0.0,
            oneway_frac: 0.0,
            ..NetworkConfig::small(3)
        })
    }

    #[test]
    fn matches_clean_trace_exactly() {
        let net = net();
        // Drive a shortest route and sample densely without noise.
        let path =
            hris_roadnet::shortest::shortest_path(&net, NodeId(0), NodeId(30), CostModel::Distance)
                .unwrap();
        let route = path.route();
        let pts = simulator::drive_route(&net, &route, 0.0, 10.0, 0.8).unwrap();
        let traj = Trajectory::new(TrajId(0), pts);
        let m = IncrementalMatcher::default()
            .match_trajectory(&net, &traj)
            .unwrap();
        assert!(m.route.is_connected(&net));
        // The matched route should cover the true route almost entirely.
        let common = m.route.common_length(&route, &net);
        assert!(
            common / route.length(&net) > 0.9,
            "coverage {}",
            common / route.length(&net)
        );
    }

    #[test]
    fn single_point_trajectory() {
        let net = net();
        let p = net.node(NodeId(5));
        let traj = Trajectory::new(
            TrajId(0),
            vec![GpsPoint::new(Point::new(p.x + 3.0, p.y), 0.0)],
        );
        let m = IncrementalMatcher::default()
            .match_trajectory(&net, &traj)
            .unwrap();
        assert_eq!(m.matched.len(), 1);
        assert_eq!(m.route.len(), 1);
    }

    #[test]
    fn empty_trajectory_is_none() {
        let net = net();
        let traj = Trajectory::new(TrajId(0), vec![]);
        assert!(IncrementalMatcher::default()
            .match_trajectory(&net, &traj)
            .is_none());
    }
}
