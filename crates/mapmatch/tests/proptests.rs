//! Property-based tests for the map-matching machinery and all four
//! matchers on randomly simulated trips.

use hris_geo::Point;
use hris_mapmatch::{
    candidates_for, network_dist, HmmMatcher, IncrementalMatcher, IvmmMatcher, MapMatcher,
    MatchParams, StMatcher,
};
use hris_roadnet::{generator, CostModel, NetworkConfig, NodeId, RoadNetwork};
use hris_traj::{resample_to_interval, simulator, TrajId, Trajectory};
use proptest::prelude::*;

fn test_net(seed: u64) -> RoadNetwork {
    generator::generate(&NetworkConfig {
        blocks_x: 5,
        blocks_y: 5,
        block_m: 200.0,
        ..NetworkConfig::small(seed)
    })
}

/// A noise-free trip along a shortest path between two pseudo-random nodes.
fn trip(net: &RoadNetwork, s: u32, t: u32, interval: f64) -> Option<Trajectory> {
    let n = net.num_nodes() as u32;
    let path = hris_roadnet::shortest::shortest_path(
        net,
        NodeId(s % n),
        NodeId(t % n),
        CostModel::Distance,
    )?;
    if path.segments.is_empty() {
        return None;
    }
    let pts = simulator::drive_route(net, &path.route(), 0.0, interval, 0.8)?;
    Some(Trajectory::new(TrajId(0), pts))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn candidates_are_sorted_and_within_radius(
        seed in 0u64..10,
        x in 0.0..1000.0f64,
        y in 0.0..1000.0f64,
    ) {
        let net = test_net(seed);
        let traj = Trajectory::new(
            TrajId(0),
            vec![hris_traj::GpsPoint::new(Point::new(x, y), 0.0)],
        );
        let params = MatchParams::default();
        let cands = candidates_for(&net, &traj, &params).unwrap();
        let cs = &cands[0].cands;
        prop_assert!(!cs.is_empty());
        prop_assert!(cs.len() <= params.max_candidates);
        for w in cs.windows(2) {
            prop_assert!(w[0].dist <= w[1].dist);
        }
        if cs.len() > 1 {
            // More than one candidate implies all within the radius.
            for c in cs {
                prop_assert!(c.dist <= params.candidate_radius + 1e-9);
            }
        }
    }

    #[test]
    fn network_dist_dominates_euclid(seed in 0u64..8, i in 0usize..50, j in 0usize..50) {
        let net = test_net(seed);
        let segs = net.segments();
        let a_seg = &segs[i % segs.len()];
        let b_seg = &segs[j % segs.len()];
        let mk = |seg: &hris_roadnet::Segment, frac: f64| {
            let off = seg.length * frac;
            hris_roadnet::network::CandidateEdge {
                segment: seg.id,
                dist: 0.0,
                closest: seg.geometry.point_at(off),
                offset: off,
            }
        };
        let a = mk(a_seg, 0.3);
        let b = mk(b_seg, 0.7);
        let nd = network_dist(&net, &a, &b);
        if nd.is_finite() {
            prop_assert!(nd + 1e-6 >= a.closest.dist(b.closest),
                "driving {nd} < straight {}", a.closest.dist(b.closest));
        }
    }

    #[test]
    fn all_matchers_produce_connected_full_matches(
        seed in 0u64..6,
        s in 0u32..100,
        t in 0u32..100,
        interval in 20.0..400.0f64,
    ) {
        let net = test_net(seed);
        prop_assume!(s % net.num_nodes() as u32 != t % net.num_nodes() as u32);
        let Some(dense) = trip(&net, s, t, 15.0) else {
            return Ok(());
        };
        prop_assume!(dense.len() >= 2);
        let traj = resample_to_interval(&dense, interval);
        let matchers: Vec<Box<dyn MapMatcher>> = vec![
            Box::new(IncrementalMatcher::default()),
            Box::new(StMatcher::default()),
            Box::new(IvmmMatcher::default()),
            Box::new(HmmMatcher::default()),
        ];
        for m in &matchers {
            let res = m.match_trajectory(&net, &traj).expect("matched");
            prop_assert_eq!(res.matched.len(), traj.len(), "{}", m.name());
            prop_assert!(res.route.is_connected(&net), "{}", m.name());
            prop_assert!(!res.route.is_empty(), "{}", m.name());
        }
    }

    #[test]
    fn clean_dense_traces_match_well(seed in 0u64..6, s in 0u32..60, t in 60u32..120) {
        let net = test_net(seed);
        let Some(traj) = trip(&net, s, t, 20.0) else {
            return Ok(());
        };
        prop_assume!(traj.len() >= 5);
        let truth = hris_roadnet::shortest::shortest_path(
            &net,
            NodeId(s % net.num_nodes() as u32),
            NodeId(t % net.num_nodes() as u32),
            CostModel::Distance,
        )
        .unwrap()
        .route();
        // ST-Matching and HMM must both track a clean dense trace closely.
        for m in [
            Box::new(StMatcher::default()) as Box<dyn MapMatcher>,
            Box::new(HmmMatcher::default()),
        ] {
            let res = m.match_trajectory(&net, &traj).unwrap();
            let cov = res.route.common_length(&truth, &net) / truth.length(&net).max(1.0);
            prop_assert!(cov > 0.75, "{}: coverage {cov}", m.name());
        }
    }
}
