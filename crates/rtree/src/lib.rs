//! A from-scratch R-tree used as the spatial index of the HRIS system.
//!
//! The paper's preprocessing component indexes the millions of archived GPS
//! points with an R-tree so that reference-trajectory search can issue
//! `φ`-radius range queries around query points (Section II-B.1). The same
//! structure indexes road-segment bounding boxes for candidate-edge lookup
//! (Definition 5).
//!
//! Features:
//! - **STR bulk loading** (Sort-Tile-Recursive) for building an index over a
//!   static archive in `O(n log n)` with near-perfect space utilisation.
//! - **Dynamic insertion** with Guttman's quadratic split, so archives can
//!   grow incrementally.
//! - **Range queries** by rectangle and by circle (with caller-refined exact
//!   distances for non-point geometry).
//! - **Incremental best-first kNN** that yields items in non-decreasing
//!   distance order, supporting the constrained-kNN walks of the NNI
//!   algorithm without fixing `k` up front.
//!
//! Nodes live in a flat arena (`Vec<Node>`) rather than boxed pointers: this
//! keeps traversals cache-friendly and sidesteps lifetime gymnastics.

#![warn(missing_docs)]

mod knn;
mod node;

pub use knn::Neighbor;

use hris_geo::{BBox, Point};
use node::{Entry, Node};

/// Anything with an axis-aligned bounding box can be indexed.
pub trait Spatial {
    /// The item's bounding box in the local planar frame.
    fn bbox(&self) -> BBox;
}

impl Spatial for Point {
    fn bbox(&self) -> BBox {
        BBox::from_point(*self)
    }
}

impl Spatial for BBox {
    fn bbox(&self) -> BBox {
        *self
    }
}

impl<T: Spatial> Spatial for (T, usize) {
    fn bbox(&self) -> BBox {
        self.0.bbox()
    }
}

/// Maximum number of entries per node.
pub(crate) const MAX_ENTRIES: usize = 16;
/// Minimum fill after a split (Guttman's 40 % rule).
pub(crate) const MIN_ENTRIES: usize = 6;

/// An R-tree over items of type `T`.
///
/// ```
/// use hris_geo::Point;
/// use hris_rtree::RTree;
///
/// let pts: Vec<Point> = (0..100).map(|i| Point::new(i as f64, (i * 7 % 13) as f64)).collect();
/// let tree = RTree::bulk_load(pts);
/// let hits = tree.query_circle(Point::new(50.0, 5.0), 3.0, |p, q| p.dist(q));
/// assert!(!hits.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct RTree<T: Spatial> {
    items: Vec<T>,
    nodes: Vec<Node>,
    root: usize,
    height: usize,
}

impl<T: Spatial> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Spatial> RTree<T> {
    /// Creates an empty tree.
    #[must_use]
    pub fn new() -> Self {
        let root = Node::leaf();
        RTree {
            items: Vec::new(),
            nodes: vec![root],
            root: 0,
            height: 1,
        }
    }

    /// Builds a tree over `items` with Sort-Tile-Recursive packing.
    #[must_use]
    pub fn bulk_load(items: Vec<T>) -> Self {
        if items.is_empty() {
            return Self::new();
        }
        let mut tree = RTree {
            items,
            nodes: Vec::new(),
            root: 0,
            height: 1,
        };
        tree.str_pack();
        tree
    }

    /// Number of indexed items.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Estimated heap bytes held by this tree: the item arena plus the
    /// node arena and every node's entry vector. Used by the capacity
    /// accounting in `BENCH_e2e.json` to compare materialized indexes
    /// against the columnar snapshot format; an estimate because
    /// allocator slack is invisible from here.
    #[must_use]
    pub fn heap_bytes_estimate(&self) -> usize {
        let items = self.items.capacity() * std::mem::size_of::<T>();
        let nodes = self.nodes.capacity() * std::mem::size_of::<Node>();
        let entries: usize = self
            .nodes
            .iter()
            .map(|n| n.entries.capacity() * std::mem::size_of::<Entry>())
            .sum();
        items + nodes + entries
    }

    /// `true` if no items are indexed.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Height of the tree (1 for a single leaf).
    #[inline]
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Borrow of all indexed items, in insertion order.
    #[inline]
    #[must_use]
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Mutable borrow of all indexed items, in insertion order.
    ///
    /// The index is **not** updated by mutations, so callers must not
    /// change any item's bounding box — only non-spatial payload fields
    /// (provenance ids, timestamps, tags). The archive's incremental
    /// maintenance path uses this to remap trajectory ids in place after a
    /// batch eviction instead of re-bulk-loading the tree.
    #[inline]
    pub fn items_mut(&mut self) -> &mut [T] {
        &mut self.items
    }

    /// Bounding box of everything in the tree (empty box when empty).
    #[must_use]
    pub fn bbox(&self) -> BBox {
        self.nodes[self.root].bbox
    }

    pub(crate) fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    pub(crate) fn root_id(&self) -> usize {
        self.root
    }

    pub(crate) fn item(&self, i: usize) -> &T {
        &self.items[i]
    }

    // ---------------------------------------------------------------- build

    /// Sort-Tile-Recursive packing of `self.items` into a fresh node arena.
    fn str_pack(&mut self) {
        self.nodes.clear();
        let n = self.items.len();
        // Leaf level: order item indices by STR tiling.
        let mut order: Vec<usize> = (0..n).collect();
        let centers: Vec<Point> = self.items.iter().map(|it| it.bbox().center()).collect();
        order.sort_by(|&a, &b| {
            centers[a]
                .x
                .total_cmp(&centers[b].x)
                .then(centers[a].y.total_cmp(&centers[b].y))
        });
        let leaf_count = n.div_ceil(MAX_ENTRIES);
        let slice_count = (leaf_count as f64).sqrt().ceil() as usize;
        let slice_size = n.div_ceil(slice_count);
        for slice in order.chunks_mut(slice_size.max(1)) {
            slice.sort_by(|&a, &b| {
                centers[a]
                    .y
                    .total_cmp(&centers[b].y)
                    .then(centers[a].x.total_cmp(&centers[b].x))
            });
        }
        // Pack leaves.
        let mut level: Vec<usize> = Vec::with_capacity(leaf_count);
        for chunk in order.chunks(MAX_ENTRIES) {
            let mut node = Node::leaf();
            for &idx in chunk {
                node.bbox.expand(&self.items[idx].bbox());
                node.entries.push(Entry::Item(idx));
            }
            level.push(self.push_node(node));
        }
        self.height = 1;
        // Pack internal levels until a single root remains.
        while level.len() > 1 {
            let mut next: Vec<usize> = Vec::with_capacity(level.len().div_ceil(MAX_ENTRIES));
            // Re-tile this level by child bbox centres for good grouping.
            let mut lvl = level.clone();
            lvl.sort_by(|&a, &b| {
                let ca = self.nodes[a].bbox.center();
                let cb = self.nodes[b].bbox.center();
                ca.x.total_cmp(&cb.x).then(ca.y.total_cmp(&cb.y))
            });
            let groups = lvl.len().div_ceil(MAX_ENTRIES);
            let slices = (groups as f64).sqrt().ceil() as usize;
            let ssize = lvl.len().div_ceil(slices.max(1)).max(1);
            for slice in lvl.chunks_mut(ssize) {
                slice.sort_by(|&a, &b| {
                    let ca = self.nodes[a].bbox.center();
                    let cb = self.nodes[b].bbox.center();
                    ca.y.total_cmp(&cb.y).then(ca.x.total_cmp(&cb.x))
                });
            }
            for chunk in lvl.chunks(MAX_ENTRIES) {
                let mut node = Node::internal();
                for &child in chunk {
                    node.bbox.expand(&self.nodes[child].bbox);
                    node.entries.push(Entry::Node(child));
                }
                next.push(self.push_node(node));
            }
            level = next;
            self.height += 1;
        }
        self.root = level[0];
    }

    fn push_node(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    // --------------------------------------------------------------- insert

    /// Inserts one item, splitting nodes as needed.
    pub fn insert(&mut self, item: T) {
        let item_bbox = item.bbox();
        let item_idx = self.items.len();
        self.items.push(item);

        // Descend to the best leaf, remembering the path.
        let mut path = Vec::with_capacity(self.height);
        let mut cur = self.root;
        loop {
            path.push(cur);
            if self.nodes[cur].is_leaf {
                break;
            }
            let next = self.choose_subtree(cur, &item_bbox);
            cur = next;
        }
        self.nodes[cur].entries.push(Entry::Item(item_idx));
        self.nodes[cur].bbox.expand(&item_bbox);

        // Walk back up: fix bboxes and split overflowing nodes.
        let mut split: Option<usize> = if self.nodes[cur].entries.len() > MAX_ENTRIES {
            Some(self.quadratic_split(cur))
        } else {
            None
        };
        for i in (0..path.len().saturating_sub(1)).rev() {
            let parent = path[i];
            self.nodes[parent].bbox.expand(&item_bbox);
            if let Some(new_node) = split.take() {
                let nb = self.nodes[new_node].bbox;
                self.nodes[parent].entries.push(Entry::Node(new_node));
                self.nodes[parent].bbox.expand(&nb);
                if self.nodes[parent].entries.len() > MAX_ENTRIES {
                    split = Some(self.quadratic_split(parent));
                }
            }
        }
        if let Some(new_node) = split {
            // Root was split: grow the tree.
            let mut new_root = Node::internal();
            new_root.bbox = self.nodes[self.root].bbox.union(&self.nodes[new_node].bbox);
            new_root.entries.push(Entry::Node(self.root));
            new_root.entries.push(Entry::Node(new_node));
            self.root = self.push_node(new_root);
            self.height += 1;
        }
    }

    /// Least-enlargement child choice (ties by smaller area).
    fn choose_subtree(&self, node: usize, bbox: &BBox) -> usize {
        let mut best = usize::MAX;
        let mut best_enlarge = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for e in &self.nodes[node].entries {
            let Entry::Node(child) = *e else {
                unreachable!("internal nodes hold node entries")
            };
            let cb = self.nodes[child].bbox;
            let area = cb.area_m2();
            let enlarge = cb.union(bbox).area_m2() - area;
            if enlarge < best_enlarge || (enlarge == best_enlarge && area < best_area) {
                best = child;
                best_enlarge = enlarge;
                best_area = area;
            }
        }
        best
    }

    /// Splits `node` in place, returning the index of its new sibling.
    fn quadratic_split(&mut self, node: usize) -> usize {
        let entries = std::mem::take(&mut self.nodes[node].entries);
        let is_leaf = self.nodes[node].is_leaf;
        let boxes: Vec<BBox> = entries.iter().map(|e| self.entry_bbox(e)).collect();

        // Pick the pair of seeds wasting the most area together.
        let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
        for i in 0..boxes.len() {
            for j in (i + 1)..boxes.len() {
                let waste =
                    boxes[i].union(&boxes[j]).area_m2() - boxes[i].area_m2() - boxes[j].area_m2();
                if waste > worst {
                    worst = waste;
                    s1 = i;
                    s2 = j;
                }
            }
        }

        let mut g1: Vec<usize> = vec![s1];
        let mut g2: Vec<usize> = vec![s2];
        let mut b1 = boxes[s1];
        let mut b2 = boxes[s2];
        let mut rest: Vec<usize> = (0..entries.len()).filter(|&i| i != s1 && i != s2).collect();

        while !rest.is_empty() {
            if g1.len() + rest.len() == MIN_ENTRIES {
                // Must dump everything into g1 to satisfy the minimum.
                for i in rest.drain(..) {
                    b1.expand(&boxes[i]);
                    g1.push(i);
                }
                break;
            }
            if g2.len() + rest.len() == MIN_ENTRIES {
                for i in rest.drain(..) {
                    b2.expand(&boxes[i]);
                    g2.push(i);
                }
                break;
            }
            // Pick the entry with the strongest preference for one group.
            let mut best_pos = 0;
            let mut best_diff = f64::NEG_INFINITY;
            for (pos, &i) in rest.iter().enumerate() {
                let d1 = b1.union(&boxes[i]).area_m2() - b1.area_m2();
                let d2 = b2.union(&boxes[i]).area_m2() - b2.area_m2();
                let diff = (d1 - d2).abs();
                if diff > best_diff {
                    best_diff = diff;
                    best_pos = pos;
                }
            }
            let i = rest.swap_remove(best_pos);
            let d1 = b1.union(&boxes[i]).area_m2() - b1.area_m2();
            let d2 = b2.union(&boxes[i]).area_m2() - b2.area_m2();
            if d1 < d2 || (d1 == d2 && g1.len() <= g2.len()) {
                b1.expand(&boxes[i]);
                g1.push(i);
            } else {
                b2.expand(&boxes[i]);
                g2.push(i);
            }
        }

        let mut sibling = if is_leaf {
            Node::leaf()
        } else {
            Node::internal()
        };
        sibling.bbox = b2;
        sibling.entries = g2.into_iter().map(|i| entries[i].clone()).collect();
        self.nodes[node].bbox = b1;
        self.nodes[node].entries = g1.into_iter().map(|i| entries[i].clone()).collect();
        self.push_node(sibling)
    }

    fn entry_bbox(&self, e: &Entry) -> BBox {
        match *e {
            Entry::Item(i) => self.items[i].bbox(),
            Entry::Node(n) => self.nodes[n].bbox,
        }
    }

    // -------------------------------------------------------------- queries

    /// Collects references to every item whose bounding box intersects `rect`.
    #[must_use]
    pub fn query_rect(&self, rect: &BBox) -> Vec<&T> {
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            if !node.bbox.intersects(rect) {
                continue;
            }
            for e in &node.entries {
                match *e {
                    Entry::Item(i) => {
                        if self.items[i].bbox().intersects(rect) {
                            out.push(&self.items[i]);
                        }
                    }
                    Entry::Node(c) => stack.push(c),
                }
            }
        }
        out
    }

    /// Items within `radius` of `center` under an exact distance function.
    ///
    /// `dist` receives the item and the query centre and must return the true
    /// point-to-item distance (which may be smaller than the bbox distance
    /// for extended geometry like road polylines).
    #[must_use]
    pub fn query_circle<F: Fn(&T, Point) -> f64>(
        &self,
        center: Point,
        radius: f64,
        dist: F,
    ) -> Vec<&T> {
        let mut out = Vec::new();
        if self.is_empty() || radius < 0.0 {
            return out;
        }
        let r_sq = radius * radius;
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            if node.bbox.min_dist_sq(center) > r_sq {
                continue;
            }
            for e in &node.entries {
                match *e {
                    Entry::Item(i) => {
                        if self.items[i].bbox().min_dist_sq(center) <= r_sq
                            && dist(&self.items[i], center) <= radius
                        {
                            out.push(&self.items[i]);
                        }
                    }
                    Entry::Node(c) => stack.push(c),
                }
            }
        }
        out
    }

    /// The `k` nearest items to `p` under `dist`, in non-decreasing order.
    #[must_use]
    pub fn nearest<F: Fn(&T, Point) -> f64>(
        &self,
        p: Point,
        k: usize,
        dist: F,
    ) -> Vec<Neighbor<'_, T>> {
        self.nearest_iter(p, dist).take(k).collect()
    }

    /// Incremental best-first nearest-neighbour iterator.
    ///
    /// Yields every indexed item exactly once, ordered by `dist(item, p)`.
    /// Correctness requires `dist(item, p) >= item.bbox().min_dist(p)` —
    /// trivially true for points, and true for any geometry contained in its
    /// own bounding box.
    pub fn nearest_iter<F: Fn(&T, Point) -> f64>(
        &self,
        p: Point,
        dist: F,
    ) -> knn::NearestIter<'_, T, F> {
        knn::NearestIter::new(self, p, dist)
    }

    // --------------------------------------------------------------- remove

    /// Removes every item whose bounding box intersects `region` and for
    /// which `pred` returns `true`. Returns the removed items.
    ///
    /// Classic R-tree deletion with tree condensing: leaves that underflow
    /// below the minimum fill are dissolved and their surviving entries
    /// re-inserted. Item indices held by [`Neighbor::index`] from *before*
    /// the call are invalidated.
    pub fn remove_where<F: FnMut(&T) -> bool>(&mut self, region: &BBox, mut pred: F) -> Vec<T> {
        if self.is_empty() {
            return Vec::new();
        }
        // Collect matching item indices.
        let mut doomed: Vec<usize> = Vec::new();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            if !node.bbox.intersects(region) {
                continue;
            }
            for e in &node.entries {
                match *e {
                    Entry::Item(i) => {
                        if self.items[i].bbox().intersects(region) && pred(&self.items[i]) {
                            doomed.push(i);
                        }
                    }
                    Entry::Node(c) => stack.push(c),
                }
            }
        }
        if doomed.is_empty() {
            return Vec::new();
        }
        doomed.sort_unstable();

        // Extract survivors and removed items; rebuild is O(n log n), which
        // for batch deletions beats per-item condensing and — unlike
        // pointer surgery — keeps every structural invariant trivially true.
        let mut removed = Vec::with_capacity(doomed.len());
        let mut survivors = Vec::with_capacity(self.items.len() - doomed.len());
        let mut d = 0usize;
        for (i, item) in std::mem::take(&mut self.items).into_iter().enumerate() {
            if d < doomed.len() && doomed[d] == i {
                removed.push(item);
                d += 1;
            } else {
                survivors.push(item);
            }
        }
        *self = RTree::bulk_load(survivors);
        removed
    }

    // ----------------------------------------------------------- invariants

    /// Exhaustively checks structural invariants; for tests.
    ///
    /// # Panics
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        let mut seen = vec![false; self.items.len()];
        let mut leaf_depths = Vec::new();
        self.check_node(self.root, 0, &mut seen, &mut leaf_depths);
        assert!(
            seen.iter().all(|&s| s),
            "every item must be reachable from the root"
        );
        if let Some(&d) = leaf_depths.first() {
            assert!(
                leaf_depths.iter().all(|&x| x == d),
                "all leaves must sit at the same depth (balanced tree)"
            );
        }
    }

    fn check_node(&self, n: usize, depth: usize, seen: &mut [bool], leaf_depths: &mut Vec<usize>) {
        let node = &self.nodes[n];
        assert!(
            node.entries.len() <= MAX_ENTRIES,
            "node {n} overflows: {} entries",
            node.entries.len()
        );
        if node.is_leaf {
            leaf_depths.push(depth);
        }
        let mut bbox = BBox::empty();
        for e in &node.entries {
            match *e {
                Entry::Item(i) => {
                    assert!(node.is_leaf, "items only live in leaves");
                    assert!(!seen[i], "item {i} indexed twice");
                    seen[i] = true;
                    bbox.expand(&self.items[i].bbox());
                }
                Entry::Node(c) => {
                    assert!(!node.is_leaf, "child nodes only live in internal nodes");
                    bbox.expand(&self.nodes[c].bbox);
                    self.check_node(c, depth + 1, seen, leaf_depths);
                }
            }
        }
        if !node.entries.is_empty() {
            assert!(
                node.bbox.contains(&bbox),
                "node bbox must cover its entries (node {n})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i % 31) as f64 * 10.0, (i / 31) as f64 * 10.0))
            .collect()
    }

    #[test]
    fn empty_tree_queries() {
        let tree: RTree<Point> = RTree::new();
        assert!(tree.is_empty());
        assert!(tree
            .query_rect(&BBox::new(Point::new(0.0, 0.0), Point::new(9.0, 9.0)))
            .is_empty());
        assert!(tree
            .query_circle(Point::ORIGIN, 100.0, |p, q| p.dist(q))
            .is_empty());
        assert!(tree.nearest(Point::ORIGIN, 3, |p, q| p.dist(q)).is_empty());
        tree.check_invariants();
    }

    #[test]
    fn bulk_load_indexes_everything() {
        let pts = grid_points(500);
        let tree = RTree::bulk_load(pts.clone());
        assert_eq!(tree.len(), 500);
        tree.check_invariants();
        // Whole-extent rect returns everything.
        let all = tree.query_rect(&tree.bbox());
        assert_eq!(all.len(), 500);
    }

    #[test]
    fn insert_indexes_everything() {
        let mut tree = RTree::new();
        for p in grid_points(300) {
            tree.insert(p);
        }
        assert_eq!(tree.len(), 300);
        tree.check_invariants();
        assert!(tree.height() > 1, "300 points must split the root leaf");
    }

    #[test]
    fn rect_query_matches_linear_scan() {
        let pts = grid_points(400);
        let tree = RTree::bulk_load(pts.clone());
        let rect = BBox::new(Point::new(35.0, 15.0), Point::new(95.0, 75.0));
        let mut got: Vec<Point> = tree.query_rect(&rect).into_iter().copied().collect();
        let mut want: Vec<Point> = pts
            .into_iter()
            .filter(|p| rect.contains_point(*p))
            .collect();
        let key = |p: &Point| (p.x as i64, p.y as i64);
        got.sort_by_key(key);
        want.sort_by_key(key);
        assert_eq!(got, want);
    }

    #[test]
    fn circle_query_matches_linear_scan() {
        let pts = grid_points(400);
        let tree = RTree::bulk_load(pts.clone());
        let c = Point::new(77.0, 33.0);
        let r = 42.0;
        let mut got: Vec<Point> = tree
            .query_circle(c, r, |p, q| p.dist(q))
            .into_iter()
            .copied()
            .collect();
        let mut want: Vec<Point> = pts.into_iter().filter(|p| p.dist(c) <= r).collect();
        let key = |p: &Point| (p.x as i64, p.y as i64);
        got.sort_by_key(key);
        want.sort_by_key(key);
        assert_eq!(got, want);
    }

    #[test]
    fn knn_orders_by_distance() {
        let pts = grid_points(200);
        let tree = RTree::bulk_load(pts.clone());
        let q = Point::new(51.0, 18.0);
        let nn = tree.nearest(q, 10, |p, c| p.dist(c));
        assert_eq!(nn.len(), 10);
        for w in nn.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        // Against the oracle.
        let mut dists: Vec<f64> = pts.iter().map(|p| p.dist(q)).collect();
        dists.sort_by(f64::total_cmp);
        for (i, n) in nn.iter().enumerate() {
            assert!((n.dist - dists[i]).abs() < 1e-9, "k={i}");
        }
    }

    #[test]
    fn knn_iterator_is_exhaustive() {
        let pts = grid_points(150);
        let tree = RTree::bulk_load(pts);
        let items: Vec<_> = tree
            .nearest_iter(Point::new(0.0, 0.0), |p, c| p.dist(c))
            .collect();
        assert_eq!(items.len(), 150);
    }

    #[test]
    fn mixed_bulk_and_insert() {
        let mut tree = RTree::bulk_load(grid_points(100));
        for p in grid_points(100) {
            tree.insert(Point::new(p.x + 3.0, p.y + 3.0));
        }
        assert_eq!(tree.len(), 200);
        tree.check_invariants();
    }

    #[test]
    fn negative_radius_is_empty() {
        let tree = RTree::bulk_load(grid_points(10));
        assert!(tree
            .query_circle(Point::ORIGIN, -1.0, |p, q| p.dist(q))
            .is_empty());
    }

    #[test]
    fn single_item_tree() {
        let tree = RTree::bulk_load(vec![Point::new(5.0, 5.0)]);
        assert_eq!(tree.len(), 1);
        let nn = tree.nearest(Point::ORIGIN, 5, |p, c| p.dist(c));
        assert_eq!(nn.len(), 1);
        assert!((nn[0].dist - 50.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn remove_where_extracts_matching_items() {
        let mut tree = RTree::bulk_load(grid_points(300));
        let region = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 40.0));
        let before = tree.len();
        let removed = tree.remove_where(&region, |_| true);
        assert!(!removed.is_empty());
        assert_eq!(tree.len() + removed.len(), before);
        tree.check_invariants();
        // Nothing inside the region remains.
        assert!(tree.query_rect(&region).is_empty());
        // Every removed point was actually inside.
        for p in &removed {
            assert!(region.contains_point(*p));
        }
    }

    #[test]
    fn remove_where_respects_predicate() {
        let mut tree = RTree::bulk_load(grid_points(100));
        let all = tree.bbox();
        let removed = tree.remove_where(&all, |p| p.x < 50.0);
        assert!(removed.iter().all(|p| p.x < 50.0));
        assert!(tree.items().iter().all(|p| p.x >= 50.0));
        tree.check_invariants();
        // Queries still work after removal.
        let hits = tree.query_circle(Point::new(100.0, 10.0), 30.0, |p, q| p.dist(q));
        assert!(hits.iter().all(|p| p.x >= 50.0));
    }

    #[test]
    fn remove_where_no_match_is_noop() {
        let mut tree = RTree::bulk_load(grid_points(50));
        let before = tree.len();
        let removed = tree.remove_where(
            &BBox::new(Point::new(9_000.0, 9_000.0), Point::new(9_100.0, 9_100.0)),
            |_| true,
        );
        assert!(removed.is_empty());
        assert_eq!(tree.len(), before);
    }

    #[test]
    fn remove_everything_leaves_empty_tree() {
        let mut tree = RTree::bulk_load(grid_points(64));
        let all = tree.bbox();
        let removed = tree.remove_where(&all, |_| true);
        assert_eq!(removed.len(), 64);
        assert!(tree.is_empty());
        tree.check_invariants();
        // Insert still works afterwards.
        tree.insert(Point::new(1.0, 1.0));
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn items_mut_allows_payload_edits_without_breaking_queries() {
        // Tag each point with an index, mutate the tags in place, and check
        // the tree still answers spatially (bboxes untouched).
        let tagged: Vec<(Point, usize)> = grid_points(120).into_iter().map(|p| (p, 0)).collect();
        let mut tree = RTree::bulk_load(tagged);
        for (i, item) in tree.items_mut().iter_mut().enumerate() {
            item.1 = i + 1000;
        }
        tree.check_invariants();
        let hits = tree.query_circle(Point::new(0.0, 0.0), 15.0, |it, q| it.0.dist(q));
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|it| it.1 >= 1000));
    }

    #[test]
    fn duplicate_points_all_indexed() {
        let pts = vec![Point::new(1.0, 1.0); 40];
        let tree = RTree::bulk_load(pts);
        let hits = tree.query_circle(Point::new(1.0, 1.0), 0.1, |p, q| p.dist(q));
        assert_eq!(hits.len(), 40);
    }
}
