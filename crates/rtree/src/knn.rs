//! Incremental best-first nearest-neighbour search.
//!
//! Classic Hjaltason–Samet algorithm: a min-heap mixes tree nodes (keyed by
//! the `MINDIST` of their bounding box) and concrete items (keyed by their
//! exact distance). Because a node's key lower-bounds every item below it, an
//! item popped from the heap is guaranteed to be the closest unreported one.

use crate::node::Entry;
use crate::{RTree, Spatial};
use hris_geo::Point;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An item yielded by nearest-neighbour search together with its distance.
#[derive(Debug)]
pub struct Neighbor<'a, T> {
    /// The indexed item.
    pub item: &'a T,
    /// Index of the item in [`RTree::items`] order.
    pub index: usize,
    /// Exact distance from the query point, metres.
    pub dist: f64,
}

enum HeapEntry {
    Node(usize),
    Item(usize),
}

struct Keyed {
    dist: f64,
    entry: HeapEntry,
}

impl PartialEq for Keyed {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for Keyed {}
impl PartialOrd for Keyed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Keyed {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the minimum distance.
        other.dist.total_cmp(&self.dist)
    }
}

/// Iterator over items of an [`RTree`] in non-decreasing distance order.
pub struct NearestIter<'a, T: Spatial, F: Fn(&T, Point) -> f64> {
    tree: &'a RTree<T>,
    query: Point,
    dist: F,
    heap: BinaryHeap<Keyed>,
}

impl<'a, T: Spatial, F: Fn(&T, Point) -> f64> NearestIter<'a, T, F> {
    pub(crate) fn new(tree: &'a RTree<T>, query: Point, dist: F) -> Self {
        let mut heap = BinaryHeap::new();
        if !tree.is_empty() {
            heap.push(Keyed {
                dist: tree.node(tree.root_id()).bbox.min_dist(query),
                entry: HeapEntry::Node(tree.root_id()),
            });
        }
        NearestIter {
            tree,
            query,
            dist,
            heap,
        }
    }
}

impl<'a, T: Spatial, F: Fn(&T, Point) -> f64> Iterator for NearestIter<'a, T, F> {
    type Item = Neighbor<'a, T>;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(Keyed { dist, entry }) = self.heap.pop() {
            match entry {
                HeapEntry::Item(i) => {
                    return Some(Neighbor {
                        item: self.tree.item(i),
                        index: i,
                        dist,
                    });
                }
                HeapEntry::Node(n) => {
                    let node = self.tree.node(n);
                    for e in &node.entries {
                        match *e {
                            Entry::Item(i) => self.heap.push(Keyed {
                                dist: (self.dist)(self.tree.item(i), self.query),
                                entry: HeapEntry::Item(i),
                            }),
                            Entry::Node(c) => self.heap.push(Keyed {
                                dist: self.tree.node(c).bbox.min_dist(self.query),
                                entry: HeapEntry::Node(c),
                            }),
                        }
                    }
                }
            }
        }
        None
    }
}
