//! Internal node representation of the R-tree arena.

use hris_geo::BBox;

/// One slot of a node: either a leaf-level item or a child node, both
/// referenced by arena index.
#[derive(Debug, Clone)]
pub(crate) enum Entry {
    /// Index into the tree's item arena.
    Item(usize),
    /// Index into the tree's node arena.
    Node(usize),
}

/// A tree node: covering bounding box plus up to `MAX_ENTRIES` entries.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub bbox: BBox,
    pub entries: Vec<Entry>,
    pub is_leaf: bool,
}

impl Node {
    pub fn leaf() -> Self {
        Node {
            bbox: BBox::empty(),
            entries: Vec::new(),
            is_leaf: true,
        }
    }

    pub fn internal() -> Self {
        Node {
            bbox: BBox::empty(),
            entries: Vec::new(),
            is_leaf: false,
        }
    }
}
