//! Property-based tests: the R-tree must agree with linear-scan oracles.

use hris_geo::{BBox, Point};
use hris_rtree::RTree;
use proptest::prelude::*;

fn point() -> impl Strategy<Value = Point> {
    (-10_000.0..10_000.0f64, -10_000.0..10_000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn sorted_key(p: &Point) -> (u64, u64) {
    (p.x.to_bits(), p.y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bulk_load_invariants(pts in prop::collection::vec(point(), 0..600)) {
        let tree = RTree::bulk_load(pts.clone());
        tree.check_invariants();
        prop_assert_eq!(tree.len(), pts.len());
    }

    #[test]
    fn insert_invariants(pts in prop::collection::vec(point(), 0..300)) {
        let mut tree = RTree::new();
        for p in &pts {
            tree.insert(*p);
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), pts.len());
    }

    #[test]
    fn rect_query_equals_scan(
        pts in prop::collection::vec(point(), 0..400),
        a in point(),
        b in point(),
    ) {
        let tree = RTree::bulk_load(pts.clone());
        let rect = BBox::new(a, b);
        let mut got: Vec<Point> = tree.query_rect(&rect).into_iter().copied().collect();
        let mut want: Vec<Point> = pts.into_iter().filter(|p| rect.contains_point(*p)).collect();
        got.sort_by_key(sorted_key);
        want.sort_by_key(sorted_key);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn circle_query_equals_scan(
        pts in prop::collection::vec(point(), 0..400),
        c in point(),
        r in 0.0..5_000.0f64,
    ) {
        let tree = RTree::bulk_load(pts.clone());
        let mut got: Vec<Point> = tree
            .query_circle(c, r, |p, q| p.dist(q))
            .into_iter()
            .copied()
            .collect();
        let mut want: Vec<Point> = pts.into_iter().filter(|p| p.dist(c) <= r).collect();
        got.sort_by_key(sorted_key);
        want.sort_by_key(sorted_key);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn knn_equals_scan(
        pts in prop::collection::vec(point(), 1..300),
        q in point(),
        k in 1usize..20,
    ) {
        let tree = RTree::bulk_load(pts.clone());
        let nn = tree.nearest(q, k, |p, c| p.dist(c));
        let mut dists: Vec<f64> = pts.iter().map(|p| p.dist(q)).collect();
        dists.sort_by(f64::total_cmp);
        let expect = k.min(pts.len());
        prop_assert_eq!(nn.len(), expect);
        for (i, n) in nn.iter().enumerate() {
            prop_assert!((n.dist - dists[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn nearest_iter_sorted_and_complete(
        pts in prop::collection::vec(point(), 0..300),
        q in point(),
    ) {
        let tree = RTree::bulk_load(pts.clone());
        let all: Vec<f64> = tree.nearest_iter(q, |p, c| p.dist(c)).map(|n| n.dist).collect();
        prop_assert_eq!(all.len(), pts.len());
        for w in all.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn incremental_knn_distance_sequence_equals_bruteforce(
        pts in prop::collection::vec(point(), 1..250),
        q in point(),
    ) {
        // Differential: the incremental best-first iterator against a
        // brute-force sort of every point's distance. Ties may order
        // differently between the two, so the *distance sequences* must be
        // equal element-wise — a stronger check than sortedness alone.
        let tree = RTree::bulk_load(pts.clone());
        let inc: Vec<f64> = tree.nearest_iter(q, |p, c| p.dist(c)).map(|n| n.dist).collect();
        let mut brute: Vec<f64> = pts.iter().map(|p| p.dist(q)).collect();
        brute.sort_by(f64::total_cmp);
        prop_assert_eq!(inc.len(), brute.len());
        for (i, (a, b)) in inc.iter().zip(&brute).enumerate() {
            prop_assert!((a - b).abs() < 1e-9, "rank {i}: incremental {a} vs brute {b}");
        }
        // And every k-prefix of nearest() agrees with the iterator.
        for k in [1, 2, pts.len() / 2, pts.len()] {
            let nn = tree.nearest(q, k, |p, c| p.dist(c));
            prop_assert_eq!(nn.len(), k.min(pts.len()));
            for (n, want) in nn.iter().zip(&inc) {
                prop_assert!((n.dist - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn remove_where_equals_retain_oracle(
        pts in prop::collection::vec(point(), 0..300),
        a in point(),
        b in point(),
        x_cut in -10_000.0..10_000.0f64,
    ) {
        let mut tree = RTree::bulk_load(pts.clone());
        let region = BBox::new(a, b);
        let removed = tree.remove_where(&region, |p| p.x < x_cut);
        tree.check_invariants();
        // Oracle: split by the same rule.
        let (want_removed, want_kept): (Vec<Point>, Vec<Point>) = pts
            .into_iter()
            .partition(|p| region.contains_point(*p) && p.x < x_cut);
        prop_assert_eq!(removed.len(), want_removed.len());
        prop_assert_eq!(tree.len(), want_kept.len());
        // Remaining queries agree with the kept oracle.
        let mut got: Vec<Point> = tree.query_rect(&tree.bbox().inflated(1.0)).into_iter().copied().collect();
        let mut want = want_kept;
        got.sort_by_key(sorted_key);
        want.sort_by_key(sorted_key);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn insert_then_query_sees_new_items(
        initial in prop::collection::vec(point(), 0..100),
        extra in prop::collection::vec(point(), 1..100),
    ) {
        let mut tree = RTree::bulk_load(initial.clone());
        for p in &extra {
            tree.insert(*p);
        }
        tree.check_invariants();
        let everything = tree.query_rect(&tree.bbox().inflated(1.0));
        prop_assert_eq!(everything.len(), initial.len() + extra.len());
    }
}
