//! Property tests for the extension features (temporal filter, free-space
//! inference) and the accuracy metric, exercised across crates.

use hris::freespace::{infer_polyline, FreespaceParams};
use hris::reference::{search_references, RefSearchConfig};
use hris_eval::metrics::{accuracy_al, lcr_length};
use hris_geo::Point;
use hris_roadnet::{generator, NetworkConfig, Route};
use hris_traj::{GpsPoint, TrajId, Trajectory, TrajectoryArchive};
use proptest::prelude::*;

fn random_archive(seed: u64, trips: usize) -> TrajectoryArchive {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::new();
    for _ in 0..trips {
        let n = rng.gen_range(3..15);
        let mut t = rng.gen_range(0.0..86_400.0 * 2.0);
        let mut x = rng.gen_range(0.0..4_000.0);
        let mut y = rng.gen_range(0.0..4_000.0);
        let mut pts = Vec::with_capacity(n);
        for _ in 0..n {
            pts.push(GpsPoint::new(Point::new(x, y), t));
            t += rng.gen_range(20.0..300.0);
            x += rng.gen_range(-400.0..400.0);
            y += rng.gen_range(-400.0..400.0);
        }
        out.push(Trajectory::new(TrajId(0), pts));
    }
    TrajectoryArchive::new(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The temporal filter can only *remove* references: time-aware results
    /// are a subset (by source ids) of time-blind results.
    #[test]
    fn temporal_filter_is_monotone(
        seed in 0u64..20,
        tod in 0.0..86_400.0f64,
        tol in 600.0..21_600.0f64,
        qx in 500.0..3_500.0f64,
        qy in 500.0..3_500.0f64,
    ) {
        let archive = random_archive(seed, 25);
        let qi = Point::new(qx, qy);
        let qj = Point::new(qx + 900.0, qy);
        let blind_cfg = RefSearchConfig::new(700.0, 0.0);
        let aware_cfg = RefSearchConfig {
            temporal: Some((tod, tol)),
            ..blind_cfg
        };
        let blind = search_references(&archive, qi, qj, 600.0, 25.0, &blind_cfg);
        let aware = search_references(&archive, qi, qj, 600.0, 25.0, &aware_cfg);
        prop_assert!(aware.len() <= blind.len());
        let blind_ids: std::collections::HashSet<_> =
            blind.refs.iter().map(|r| r.sources.clone()).collect();
        for r in &aware.refs {
            prop_assert!(blind_ids.contains(&r.sources));
        }
    }

    /// Free-space inference always produces a polyline spanning the query,
    /// whatever the archive looks like.
    #[test]
    fn freespace_spans_query(seed in 0u64..12, n_pts in 2usize..6) {
        let archive = random_archive(seed, 15);
        let pts: Vec<GpsPoint> = (0..n_pts)
            .map(|k| {
                GpsPoint::new(
                    Point::new(500.0 + k as f64 * 700.0, 1_000.0 + (k % 2) as f64 * 300.0),
                    k as f64 * 240.0,
                )
            })
            .collect();
        let query = Trajectory::new(TrajId(0), pts.clone());
        let pl = infer_polyline(&archive, &query, &FreespaceParams::default()).unwrap();
        prop_assert!(pl.start().dist(pts[0].pos) < 1e-6);
        prop_assert!(pl.end().dist(pts[n_pts - 1].pos) < 1e-6);
        // Every query fix lies on the inferred curve.
        for p in &pts {
            prop_assert!(pl.dist_to_point(p.pos) < 1e-6);
        }
        prop_assert!(pl.length().is_finite());
    }

    /// `A_L` over random routes: bounded, symmetric, and LCR dominated by
    /// both route lengths.
    #[test]
    fn accuracy_metric_invariants(
        seed in 0u64..10,
        walk_a in prop::collection::vec(0usize..4, 1..25),
        walk_b in prop::collection::vec(0usize..4, 1..25),
    ) {
        let net = generator::generate(&NetworkConfig {
            blocks_x: 4,
            blocks_y: 4,
            ..NetworkConfig::small(seed)
        });
        let walk = |start: usize, choices: &[usize]| -> Route {
            let mut segs = vec![net.segments()[start % net.num_segments()].id];
            for &c in choices {
                let nexts = net.next_segments(*segs.last().unwrap());
                if nexts.is_empty() {
                    break;
                }
                segs.push(nexts[c % nexts.len()]);
            }
            Route::new(segs)
        };
        let a = walk(seed as usize, &walk_a);
        let b = walk(seed as usize + 7, &walk_b);
        let acc = accuracy_al(&a, &b, &net);
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert!((acc - accuracy_al(&b, &a, &net)).abs() < 1e-9);
        prop_assert!((accuracy_al(&a, &a, &net) - 1.0).abs() < 1e-9);
        let lcr = lcr_length(&a, &b, &net);
        prop_assert!(lcr <= a.length(&net) + 1e-6);
        prop_assert!(lcr <= b.length(&net) + 1e-6);
    }
}
