//! End-to-end integration tests: city generation → fleet simulation →
//! preprocessing → route inference → accuracy evaluation, spanning every
//! crate in the workspace.

use hris::{Hris, HrisParams, LocalAlgorithm};
use hris_eval::metrics::accuracy_al;
use hris_eval::scenario::{Scenario, ScenarioConfig};
use hris_mapmatch::{IncrementalMatcher, IvmmMatcher, MapMatcher, StMatcher};
use hris_roadnet::NetworkConfig;
use hris_traj::{resample_to_interval, TrajectoryArchive};

/// One shared scenario, built once per test binary (it is deterministic).
fn scenario() -> &'static Scenario {
    static SCENARIO: std::sync::OnceLock<Scenario> = std::sync::OnceLock::new();
    SCENARIO.get_or_init(build_scenario)
}

fn build_scenario() -> Scenario {
    let mut cfg = ScenarioConfig::quick(404);
    cfg.net = NetworkConfig {
        blocks_x: 20,
        blocks_y: 20,
        block_m: 300.0,
        arterial_every: 5,
        seed: 9,
        ..NetworkConfig::default()
    };
    cfg.sim.num_trips = 900;
    cfg.sim.num_od_patterns = 30;
    cfg.sim.min_trip_dist_m = 3_000.0;
    cfg.num_queries = 5;
    cfg.query_len_m = (3_500.0, 6_000.0);
    Scenario::build(cfg)
}

#[test]
fn hris_beats_chance_at_low_sampling_rate() {
    let s = scenario();
    let hris = Hris::new(&s.net, s.archive.clone(), HrisParams::default());
    let mut total = 0.0;
    for q in &s.queries {
        let query = resample_to_interval(&q.dense, 360.0); // 6-minute fixes
        let top = hris.infer_top1(&query).expect("inference succeeds");
        assert!(top.route.is_connected(&s.net), "inferred route connects");
        total += accuracy_al(&q.truth, &top.route, &s.net);
    }
    let mean = total / s.queries.len() as f64;
    assert!(mean > 0.4, "mean A_L at 6-min sampling was {mean}");
}

#[test]
fn all_matchers_run_end_to_end() {
    let s = scenario();
    let hris = Hris::new(&s.net, s.archive.clone(), HrisParams::default());
    let hm = hris::HrisMatcher { hris: &hris };
    let ivmm = IvmmMatcher::default();
    let st = StMatcher::default();
    let inc = IncrementalMatcher::default();
    let matchers: Vec<&dyn MapMatcher> = vec![&hm, &ivmm, &st, &inc];
    let query = resample_to_interval(&s.queries[0].dense, 240.0);
    for m in matchers {
        let res = m
            .match_trajectory(&s.net, &query)
            .unwrap_or_else(|| panic!("{} failed", m.name()));
        assert!(
            !res.route.is_empty(),
            "{} returned an empty route",
            m.name()
        );
        assert!(
            res.route.is_connected(&s.net),
            "{} returned a disconnected route",
            m.name()
        );
        let acc = accuracy_al(&s.queries[0].truth, &res.route, &s.net);
        assert!((0.0..=1.0).contains(&acc));
    }
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let s1 = build_scenario();
    let s2 = build_scenario();
    let h1 = Hris::new(&s1.net, s1.archive.clone(), HrisParams::default());
    let h2 = Hris::new(&s2.net, s2.archive.clone(), HrisParams::default());
    for (qa, qb) in s1.queries.iter().zip(s2.queries.iter()) {
        let query_a = resample_to_interval(&qa.dense, 300.0);
        let query_b = resample_to_interval(&qb.dense, 300.0);
        let ra = h1.infer_routes(&query_a, 3);
        let rb = h2.infer_routes(&query_b, 3);
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(rb.iter()) {
            assert_eq!(x.route, y.route);
            assert!((x.log_score - y.log_score).abs() < 1e-9);
        }
    }
}

#[test]
fn forced_local_algorithms_both_work() {
    let s = scenario();
    let query = resample_to_interval(&s.queries[1].dense, 300.0);
    for algo in [LocalAlgorithm::Tgi, LocalAlgorithm::Nni] {
        let params = HrisParams {
            local_algorithm: algo,
            ..HrisParams::default()
        };
        let hris = Hris::new(&s.net, s.archive.clone(), params);
        let top = hris.infer_top1(&query).expect("inference succeeds");
        assert!(top.route.is_connected(&s.net));
        assert!(top.route.length(&s.net) > 1_000.0);
    }
}

#[test]
fn archive_persistence_roundtrips_through_inference() {
    let s = scenario();
    // Serialise the archive, reload it, and verify inference is unchanged.
    let blob = s.archive.to_bytes();
    let restored = TrajectoryArchive::from_bytes(blob).expect("valid blob");
    let query = resample_to_interval(&s.queries[2].dense, 300.0);
    let h1 = Hris::new(&s.net, s.archive.clone(), HrisParams::default());
    let h2 = Hris::new(&s.net, restored, HrisParams::default());
    let r1 = h1.infer_top1(&query).unwrap();
    let r2 = h2.infer_top1(&query).unwrap();
    assert_eq!(r1.route, r2.route);
}

#[test]
fn top_k_global_routes_ranked_and_loop_free() {
    let s = scenario();
    let hris = Hris::new(&s.net, s.archive.clone(), HrisParams::default());
    let query = resample_to_interval(&s.queries[3].dense, 300.0);
    let routes = hris.infer_routes(&query, 6);
    assert!(!routes.is_empty());
    for w in routes.windows(2) {
        assert!(w[0].log_score >= w[1].log_score);
    }
    for r in &routes {
        // Loop-free: excising loops must be a no-op.
        assert_eq!(r.route.without_loops(&s.net), r.route);
    }
}
