//! Learned re-ranking across the sharding seam.
//!
//! The router's scatter-gather splice scores stitched cross-shard results
//! itself, so it must use *exactly* the scorer its shard engines were
//! configured with. These tests pin that: with the same rerank config, an
//! N-shard deployment is byte-identical to a single engine; with a
//! mismatched config the outputs detectably diverge (the divergence is what
//! a silent scorer drift would look like — it must be loud, not subtle).

use hris::{EngineConfig, EngineHandle, HrisParams, QueryResult, RerankModel};
use hris_geo::{BBox, Point};
use hris_roadnet::{generator, NetworkConfig, RoadNetwork};
use hris_router::{ShardPlan, ShardedEngine};
use hris_traj::{GpsPoint, SimConfig, Simulator, TrajId, Trajectory, TrajectoryArchive};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn net() -> Arc<RoadNetwork> {
    Arc::new(generator::generate(&NetworkConfig {
        blocks_x: 20,
        blocks_y: 20,
        block_m: 300.0,
        seed: 19,
        ..NetworkConfig::default()
    }))
}

fn sim_archive(net: &RoadNetwork, trips: usize, seed: u64) -> TrajectoryArchive {
    let mut sim = Simulator::new(
        net,
        SimConfig {
            num_trips: trips,
            num_od_patterns: 7,
            min_trip_dist_m: 400.0,
            seed,
            ..SimConfig::default()
        },
    );
    sim.generate_archive().0
}

fn query_in_cell(cell: &BBox, seed: u64, n_pts: usize) -> Trajectory {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let inset_x = 0.05 * cell.width();
    let inset_y = 0.05 * cell.height();
    let (lo_x, hi_x) = (cell.min.x + inset_x, cell.max.x - inset_x);
    let (lo_y, hi_y) = (cell.min.y + inset_y, cell.max.y - inset_y);
    let mut x = rng.gen_range(lo_x..hi_x);
    let mut y = rng.gen_range(lo_y..hi_y);
    let mut t = rng.gen_range(0.0..3_600.0);
    let pts = (0..n_pts)
        .map(|_| {
            let p = GpsPoint::new(Point::new(x, y), t);
            x += rng.gen_range(-600.0..600.0);
            y += rng.gen_range(-600.0..600.0);
            x = x.clamp(lo_x, hi_x);
            y = y.clamp(lo_y, hi_y);
            t += rng.gen_range(60.0..180.0);
            p
        })
        .collect();
    Trajectory::new(TrajId(9_000_000 + seed as u32), pts)
}

/// An inversion model: a negative weight on the paper's own `ln s(R)`.
/// Small enough that the sigmoid never saturates for realistic scores
/// (|ln s| up to ~1800 keeps |z| < 36), so any top-K with distinct paper
/// scores reorders and a config mismatch cannot hide.
fn inversion_model() -> RerankModel {
    let mut weights = vec![0.0; hris::scoring::NUM_FEATURES];
    *weights.last_mut().unwrap() = -0.02;
    RerankModel::from_weights(weights, 0.0)
}

fn rerank_cfg() -> EngineConfig {
    EngineConfig::builder()
        .rerank(inversion_model())
        .build()
        .unwrap()
}

fn assert_identical(a: &QueryResult, b: &QueryResult, ctx: &str) {
    assert_eq!(a.globals.len(), b.globals.len(), "{ctx}: top-K length");
    for (i, (ga, gb)) in a.globals.iter().zip(&b.globals).enumerate() {
        assert_eq!(ga.route, gb.route, "{ctx}: route {i}");
        assert_eq!(
            ga.log_score.to_bits(),
            gb.log_score.to_bits(),
            "{ctx}: score bits of route {i}"
        );
        assert_eq!(ga.local_indices, gb.local_indices, "{ctx}: assignment {i}");
    }
    assert_eq!(a.outcome, b.outcome, "{ctx}: outcome");
}

fn ranking_differs(a: &QueryResult, b: &QueryResult) -> bool {
    a.globals.len() != b.globals.len()
        || a.globals
            .iter()
            .zip(&b.globals)
            .any(|(x, y)| x.route != y.route)
}

/// With the same rerank model everywhere, sharded in-core queries are
/// byte-identical to a single rerank-enabled engine for N ∈ {1, 2, 4, 9}.
#[test]
fn sharded_rerank_matches_single_engine_in_core() {
    let net = net();
    let archive = sim_archive(&net, 90, 11);
    let params = HrisParams::default();
    let cfg = rerank_cfg();
    let single = EngineHandle::with_config(
        Arc::clone(&net),
        archive.clone(),
        params.clone(),
        cfg.clone(),
    );

    for (nx, ny) in [(1, 1), (2, 1), (2, 2), (3, 3)] {
        let plan = ShardPlan::grid(&net, nx, ny, params.phi_m);
        let sharded = ShardedEngine::build(
            Arc::clone(&net),
            &archive,
            params.clone(),
            cfg.clone(),
            plan,
        );
        for s in 0..sharded.num_shards() {
            for qi in 0..2 {
                let q = query_in_cell(&sharded.plan().core(s), (s * 31 + qi) as u64, 4 + qi % 3);
                let got = sharded.infer_query(&q, 3);
                let want = single.infer_query(&q, 3);
                assert_identical(&got, &want, &format!("{nx}x{ny} shard {s} q{qi}"));
            }
        }
    }
}

/// Cross-shard scatter queries (margin slack, so every pair respects the
/// partition) splice through the router's own scorer — with rerank on it
/// must still match the single rerank-enabled engine byte for byte.
#[test]
fn scatter_splice_reranks_byte_identically() {
    let net = net();
    let archive = sim_archive(&net, 90, 12);
    let params = HrisParams::default();
    let cfg = rerank_cfg();
    let single = EngineHandle::with_config(
        Arc::clone(&net),
        archive.clone(),
        params.clone(),
        cfg.clone(),
    );

    let plan = ShardPlan::grid(&net, 2, 1, params.phi_m + 900.0);
    let seam_x = plan.core(0).max.x;
    let sharded = ShardedEngine::build(
        Arc::clone(&net),
        &archive,
        params.clone(),
        cfg.clone(),
        plan,
    );

    let y = net.bbox().center().y;
    let mut scattered = 0;
    for (qi, step) in [(0u32, 500.0), (1, 700.0), (2, 600.0)] {
        let xs = [
            seam_x - 2.0 * step,
            seam_x - step,
            seam_x + step,
            seam_x + 2.0 * step,
        ];
        let q = Trajectory::new(
            TrajId(8_100_000 + qi),
            xs.iter()
                .enumerate()
                .map(|(i, &x)| GpsPoint::new(Point::new(x, y + i as f64 * 40.0), i as f64 * 120.0))
                .collect(),
        );
        let (got, trace) = sharded.infer_query_traced(&q, 3);
        let want = single.infer_query(&q, 3);
        if trace.kind == hris_router::RouteKind::Scatter {
            scattered += 1;
        }
        assert_identical(&got, &want, &format!("seam query {qi}"));
    }
    assert!(scattered > 0, "no query exercised the scatter splice");
}

/// A scorer-config mismatch between the deployment tiers must be loud:
/// a rerank-enabled single engine and a rerank-disabled sharded deployment
/// must disagree on at least one ranking. (If this test ever fails, the
/// seam has started silently ignoring the rerank config — exactly the bug
/// class the shared `configured_scorer` seam exists to prevent.)
#[test]
fn mismatched_rerank_configs_visibly_diverge() {
    let net = net();
    let archive = sim_archive(&net, 90, 11);
    let params = HrisParams::default();
    let reranked = EngineHandle::with_config(
        Arc::clone(&net),
        archive.clone(),
        params.clone(),
        rerank_cfg(),
    );
    let plan = ShardPlan::grid(&net, 2, 2, params.phi_m);
    let sharded_plain = ShardedEngine::build(
        Arc::clone(&net),
        &archive,
        params.clone(),
        EngineConfig::default(),
        plan,
    );

    let mut diverged = false;
    for s in 0..sharded_plain.num_shards() {
        for qi in 0..3 {
            let q = query_in_cell(&sharded_plain.plan().core(s), (s * 31 + qi) as u64, 5);
            let a = reranked.infer_query(&q, 4);
            let b = sharded_plain.infer_query(&q, 4);
            if ranking_differs(&a, &b) {
                diverged = true;
            }
        }
    }
    assert!(
        diverged,
        "an inversion model on one tier only must change at least one ranking"
    );
}
