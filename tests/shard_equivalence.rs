//! Differential shard-equivalence suite: the headline guarantee of the
//! sharded engine.
//!
//! An N-shard [`ShardedEngine`] must return **byte-identical** results to a
//! single global [`EngineHandle`] over the unpartitioned archive for every
//! partition-respecting query — identical routes, identical score *bits*,
//! identical outcomes. Deterministic tests pin N ∈ {1, 2, 4, 9, 16};
//! proptests sweep random grids, archives, and workloads. Cross-shard
//! queries with test-pinned splice points are checked byte-identically when
//! the replication margin covers the seam pairs, and for determinism plus
//! pinned splice positions otherwise.

use hris::{EngineHandle, HrisParams, QueryResult};
use hris_geo::{BBox, Point};
use hris_roadnet::{generator, NetworkConfig, RoadNetwork};
use hris_router::{RouteKind, ShardPlan, ShardedEngine};
use hris_traj::{GpsPoint, SimConfig, Simulator, TrajId, Trajectory, TrajectoryArchive};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn net() -> Arc<RoadNetwork> {
    // ~6 km × 6 km: large enough that a 4×4 grid's cells (~1.5 km) dwarf
    // the φ = 500 m replication margin, so sharding is non-trivial.
    Arc::new(generator::generate(&NetworkConfig {
        blocks_x: 20,
        blocks_y: 20,
        block_m: 300.0,
        seed: 19,
        ..NetworkConfig::default()
    }))
}

fn sim_archive(net: &RoadNetwork, trips: usize, seed: u64) -> TrajectoryArchive {
    let mut sim = Simulator::new(
        net,
        SimConfig {
            num_trips: trips,
            num_od_patterns: 7,
            min_trip_dist_m: 400.0,
            seed,
            ..SimConfig::default()
        },
    );
    sim.generate_archive().0
}

/// A random-walk archive spread over the network bounds (proptest fodder —
/// cheaper than the simulator and adversarially unstructured).
fn random_archive(net: &RoadNetwork, trips: usize, seed: u64) -> TrajectoryArchive {
    let b = net.bbox();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::new();
    for _ in 0..trips {
        let n = rng.gen_range(2..10);
        let mut x = rng.gen_range(b.min.x..b.max.x);
        let mut y = rng.gen_range(b.min.y..b.max.y);
        let mut t = rng.gen_range(0.0..86_400.0);
        let mut pts = Vec::with_capacity(n);
        for _ in 0..n {
            pts.push(GpsPoint::new(Point::new(x, y), t));
            x += rng.gen_range(-500.0..500.0);
            y += rng.gen_range(-500.0..500.0);
            x = x.clamp(b.min.x, b.max.x);
            y = y.clamp(b.min.y, b.max.y);
            t += rng.gen_range(30.0..240.0);
        }
        out.push(Trajectory::new(TrajId(0), pts));
    }
    TrajectoryArchive::new(out)
}

/// A low-sampling-rate query random-walking **inside** `cell` (inset a
/// little so the walk has room): with margin ≥ φ its φ-inflated bbox fits
/// the cell's region, i.e. it is partition-respecting by construction.
fn query_in_cell(cell: &BBox, seed: u64, n_pts: usize) -> Trajectory {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let inset_x = 0.05 * cell.width();
    let inset_y = 0.05 * cell.height();
    let (lo_x, hi_x) = (cell.min.x + inset_x, cell.max.x - inset_x);
    let (lo_y, hi_y) = (cell.min.y + inset_y, cell.max.y - inset_y);
    let mut x = rng.gen_range(lo_x..hi_x);
    let mut y = rng.gen_range(lo_y..hi_y);
    let mut t = rng.gen_range(0.0..3_600.0);
    let pts = (0..n_pts)
        .map(|_| {
            let p = GpsPoint::new(Point::new(x, y), t);
            x += rng.gen_range(-600.0..600.0);
            y += rng.gen_range(-600.0..600.0);
            x = x.clamp(lo_x, hi_x);
            y = y.clamp(lo_y, hi_y);
            t += rng.gen_range(60.0..180.0);
            p
        })
        .collect();
    Trajectory::new(TrajId(9_000_000 + seed as u32), pts)
}

/// Byte-level equality: same routes, same score bits, same outcome.
fn assert_identical(a: &QueryResult, b: &QueryResult, ctx: &str) {
    assert_eq!(a.globals.len(), b.globals.len(), "{ctx}: top-K length");
    for (i, (ga, gb)) in a.globals.iter().zip(&b.globals).enumerate() {
        assert_eq!(ga.route, gb.route, "{ctx}: route {i}");
        assert_eq!(
            ga.log_score.to_bits(),
            gb.log_score.to_bits(),
            "{ctx}: score bits of route {i}"
        );
        assert_eq!(ga.local_indices, gb.local_indices, "{ctx}: assignment {i}");
    }
    assert_eq!(a.outcome, b.outcome, "{ctx}: outcome");
    assert_eq!(a.stats.len(), b.stats.len(), "{ctx}: per-pair stats length");
}

/// N ∈ {1, 2, 4, 9, 16}: every in-core query answers byte-identically to
/// the global single-shard engine, and routes as single-shard.
#[test]
fn sharded_engines_match_global_engine_for_all_grid_sizes() {
    let net = net();
    let archive = sim_archive(&net, 90, 11);
    let params = HrisParams::default();
    let global = EngineHandle::new(Arc::clone(&net), archive.clone(), params.clone());

    for (nx, ny) in [(1, 1), (2, 1), (2, 2), (3, 3), (4, 4)] {
        let plan = ShardPlan::grid(&net, nx, ny, params.phi_m);
        let sharded = ShardedEngine::build(
            Arc::clone(&net),
            &archive,
            params.clone(),
            hris::EngineConfig::default(),
            plan,
        );
        assert_eq!(sharded.num_shards(), nx * ny);
        assert!(sharded.replication_factor() >= 1.0);

        for s in 0..sharded.num_shards() {
            for qi in 0..3 {
                let q = query_in_cell(&sharded.plan().core(s), (s * 31 + qi) as u64, 4 + qi % 3);
                let (got, trace) = sharded.infer_query_traced(&q, 3);
                let want = global.infer_query(&q, 3);
                assert_eq!(
                    trace.kind,
                    RouteKind::Single(s),
                    "{nx}x{ny} shard {s}: in-core query must route single-shard"
                );
                assert_eq!(trace.epochs.len(), 1, "one epoch pinned");
                assert_identical(&got, &want, &format!("{nx}x{ny} shard {s} q{qi}"));
            }
        }
    }
}

/// Cross-shard queries whose every *pair* respects the partition (the
/// margin exceeds φ by the seam straddle) are byte-identical too, with the
/// splice pinned exactly where the pair assignment changes shards.
#[test]
fn cross_shard_splice_is_byte_identical_with_margin_slack() {
    let net = net();
    let archive = sim_archive(&net, 90, 12);
    let params = HrisParams::default();
    let global = EngineHandle::new(Arc::clone(&net), archive.clone(), params.clone());

    // 2×1 grid; margin φ + 900 m lets pairs straddle up to 900 m past the
    // seam while still fitting one region.
    let plan = ShardPlan::grid(&net, 2, 1, params.phi_m + 900.0);
    let seam_x = plan.core(0).max.x;
    let sharded = ShardedEngine::build(
        Arc::clone(&net),
        &archive,
        params.clone(),
        hris::EngineConfig::default(),
        plan,
    );

    let b = net.bbox();
    let y = b.center().y;
    for (qi, step) in [(0u32, 500.0), (1, 700.0), (2, 600.0)] {
        // Walk left-to-right across the seam; flank points stay within the
        // margin slack so every pair's φ-box fits region 0 or region 1.
        let xs = [
            seam_x - 2.0 * step,
            seam_x - step,
            seam_x + step,
            seam_x + 2.0 * step,
        ];
        let q = Trajectory::new(
            TrajId(8_000_000 + qi),
            xs.iter()
                .enumerate()
                .map(|(i, &x)| GpsPoint::new(Point::new(x, y + i as f64 * 40.0), i as f64 * 120.0))
                .collect(),
        );
        let (got, trace) = sharded.infer_query_traced(&q, 3);
        let want = global.infer_query(&q, 3);

        assert_eq!(trace.kind, RouteKind::Scatter, "seam query scatters");
        // Pin the splice: pairs (0,1) sit left of the seam, pair 2 right of
        // it — exactly one seam, between pair 1 and pair 2.
        assert_eq!(trace.pair_shards, vec![0, 0, 1], "pinned pair routing");
        assert_eq!(trace.splice_points, vec![1], "pinned splice position");
        assert_eq!(trace.epochs.len(), 2, "both shards pinned one epoch");
        assert_identical(&got, &want, &format!("seam query {qi}"));
    }
}

/// With margin exactly φ, seam-straddling pairs are *wild* (fit no region):
/// the answer is not provably identical but must be deterministic, with
/// splice points pinned by the plan's midpoint rule.
#[test]
fn wild_pairs_route_deterministically_with_pinned_splices() {
    let net = net();
    let archive = sim_archive(&net, 70, 13);
    let params = HrisParams::default();
    let plan = ShardPlan::grid(&net, 2, 1, params.phi_m);
    let seam_x = plan.core(0).max.x;
    let sharded = ShardedEngine::build(
        Arc::clone(&net),
        &archive,
        params.clone(),
        hris::EngineConfig::default(),
        plan,
    );

    let y = net.bbox().center().y;
    let q = Trajectory::new(
        TrajId(7_000_000),
        [
            seam_x - 2_000.0,
            seam_x - 600.0,
            seam_x + 600.0,
            seam_x + 2_000.0,
        ]
        .iter()
        .enumerate()
        .map(|(i, &x)| GpsPoint::new(Point::new(x, y), i as f64 * 150.0))
        .collect(),
    );
    let (r1, t1) = sharded.infer_query_traced(&q, 3);
    let (r2, t2) = sharded.infer_query_traced(&q, 3);
    assert_eq!(t1.kind, RouteKind::Scatter);
    // The wild middle pair straddles the seam; its midpoint is on the seam
    // and the midpoint rule sends it to the right cell (half-open cells).
    assert_eq!(t1.pair_shards, vec![0, 1, 1], "pinned wild-pair routing");
    assert_eq!(t1.splice_points, vec![0], "pinned splice position");
    assert_eq!(t1.pair_shards, t2.pair_shards);
    assert_identical(&r1, &r2, "wild-pair determinism");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random grid shapes × random archives × random in-core workloads:
    /// single-shard routing is byte-identical to the global engine.
    #[test]
    fn random_grids_are_byte_identical_on_partition_respecting_workloads(
        nx in 1usize..5,
        ny in 1usize..5,
        arch_seed in 0u64..40,
        q_seed in 0u64..1_000,
        n_pts in 2usize..6,
    ) {
        let net = net();
        let archive = random_archive(&net, 40, arch_seed);
        let params = HrisParams::default();
        let global = EngineHandle::new(Arc::clone(&net), archive.clone(), params.clone());
        let plan = ShardPlan::grid(&net, nx, ny, params.phi_m);
        let sharded = ShardedEngine::build(
            Arc::clone(&net),
            &archive,
            params.clone(),
            hris::EngineConfig::default(),
            plan,
        );

        let s = (q_seed as usize) % (nx * ny);
        let q = query_in_cell(&sharded.plan().core(s), q_seed, n_pts);
        let (got, trace) = sharded.infer_query_traced(&q, 3);
        let want = global.infer_query(&q, 3);
        prop_assert_eq!(trace.kind, RouteKind::Single(s));
        assert_identical(&got, &want, &format!("{nx}x{ny} seed {arch_seed}/{q_seed}"));
    }

    /// Random seam workloads under a slack margin: scatter-gather splicing
    /// reproduces the global engine bit-for-bit.
    #[test]
    fn random_seam_queries_are_byte_identical_under_slack_margin(
        arch_seed in 0u64..30,
        q_seed in 0u64..1_000,
        straddle in 100.0..850.0f64,
    ) {
        let net = net();
        let archive = random_archive(&net, 40, arch_seed);
        let params = HrisParams::default();
        let global = EngineHandle::new(Arc::clone(&net), archive.clone(), params.clone());
        let plan = ShardPlan::grid(&net, 2, 2, params.phi_m + 900.0);
        let seam_x = plan.core(0).max.x;
        let sharded = ShardedEngine::build(
            Arc::clone(&net),
            &archive,
            params.clone(),
            hris::EngineConfig::default(),
            plan,
        );

        let mut rng = ChaCha8Rng::seed_from_u64(q_seed);
        let b = net.bbox();
        let y = rng.gen_range(
            b.min.y + 0.1 * b.height()..b.min.y + 0.4 * b.height(),
        );
        let q = Trajectory::new(
            TrajId(6_000_000 + q_seed as u32),
            [seam_x - straddle - 700.0, seam_x - straddle, seam_x + straddle]
                .iter()
                .enumerate()
                .map(|(i, &x)| GpsPoint::new(Point::new(x, y), i as f64 * 130.0))
                .collect(),
        );
        let (got, trace) = sharded.infer_query_traced(&q, 2);
        let want = global.infer_query(&q, 2);
        if trace.kind == RouteKind::Scatter {
            prop_assert_eq!(&trace.splice_points, &vec![0usize], "one pinned seam");
        }
        assert_identical(&got, &want, &format!("seam {arch_seed}/{q_seed}"));
    }
}
