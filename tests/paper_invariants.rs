//! Cross-crate invariants lifted straight from the paper's claims, checked
//! on real pipeline outputs (not synthetic fixtures).

use hris::{Hris, HrisParams, PaperScorer, RouteScorer, ScoringCtx};
use hris_eval::metrics::{accuracy_al, lcr_length};
use hris_eval::scenario::{Scenario, ScenarioConfig};
use hris_roadnet::NetworkConfig;
use hris_traj::resample_to_interval;

fn scenario() -> &'static Scenario {
    static SCENARIO: std::sync::OnceLock<Scenario> = std::sync::OnceLock::new();
    SCENARIO.get_or_init(|| {
        let mut cfg = ScenarioConfig::quick(777);
        cfg.net = NetworkConfig {
            blocks_x: 18,
            blocks_y: 18,
            block_m: 300.0,
            arterial_every: 6,
            seed: 77,
            ..NetworkConfig::default()
        };
        cfg.sim.num_trips = 700;
        cfg.sim.num_od_patterns = 25;
        cfg.sim.min_trip_dist_m = 2_500.0;
        cfg.num_queries = 4;
        cfg.query_len_m = (3_000.0, 5_500.0);
        Scenario::build(cfg)
    })
}

/// Section III-C: K-GRI's downward-closure DP must equal exhaustive
/// enumeration — here on the *actual* local-inference output of a query.
#[test]
fn kgri_matches_brute_force_on_real_queries() {
    let s = scenario();
    let params = HrisParams {
        max_local_routes: 4, // keep brute force tractable
        ..HrisParams::default()
    };
    let hris = Hris::new(&s.net, s.archive.clone(), params.clone());
    for q in &s.queries {
        let query = resample_to_interval(&q.dense, 300.0);
        let locals = hris.local_inference(&query);
        let n = locals.len().min(6);
        let slice = &locals[..n];
        for k in [1usize, 3] {
            let scorer = PaperScorer::from_params(&params);
            let sctx = ScoringCtx::new(&s.net, slice, k);
            let dp = scorer.top_k(&sctx);
            let bf = scorer.top_k_brute_force(&sctx);
            assert_eq!(dp.len(), bf.len());
            for (d, b) in dp.iter().zip(bf.iter()) {
                assert!(
                    (d.log_score - b.log_score).abs() < 1e-9,
                    "k={k}: {} vs {}",
                    d.log_score,
                    b.log_score
                );
            }
        }
    }
}

/// Figure 14a's monotonicity: the best of the top-k suggestions can only
/// improve as k grows.
#[test]
fn max_topk_accuracy_is_monotone_in_k() {
    let s = scenario();
    let hris = Hris::new(&s.net, s.archive.clone(), HrisParams::default());
    for q in &s.queries {
        let query = resample_to_interval(&q.dense, 300.0);
        let mut last_max = 0.0f64;
        for k in [1usize, 2, 4, 8] {
            let routes = hris.infer_routes(&query, k);
            let best = routes
                .iter()
                .map(|r| accuracy_al(&q.truth, &r.route, &s.net))
                .fold(0.0f64, f64::max);
            assert!(
                best >= last_max - 1e-9,
                "k={k}: best {best} dropped below {last_max}"
            );
            last_max = last_max.max(best);
        }
    }
}

/// The accuracy metric itself: identity, symmetry, bounds — on real routes.
#[test]
fn accuracy_metric_properties_on_real_routes() {
    let s = scenario();
    let hris = Hris::new(&s.net, s.archive.clone(), HrisParams::default());
    for q in &s.queries {
        let query = resample_to_interval(&q.dense, 300.0);
        let top = hris.infer_top1(&query).unwrap();
        let a = accuracy_al(&q.truth, &top.route, &s.net);
        assert!((0.0..=1.0).contains(&a));
        assert!((accuracy_al(&q.truth, &q.truth, &s.net) - 1.0).abs() < 1e-9);
        assert!(
            (accuracy_al(&q.truth, &top.route, &s.net) - accuracy_al(&top.route, &q.truth, &s.net))
                .abs()
                < 1e-9
        );
        // LCR is bounded by both route lengths.
        let lcr = lcr_length(&q.truth, &top.route, &s.net);
        assert!(lcr <= q.truth.length(&s.net) + 1e-6);
        assert!(lcr <= top.route.length(&s.net) + 1e-6);
    }
}

/// Observation 1 must hold in the generated archive itself: route
/// popularity over recurring OD patterns is heavily skewed.
#[test]
fn archive_exhibits_skewed_travel_patterns() {
    let s = scenario();
    use std::collections::HashMap;
    let mut counts: HashMap<&hris_roadnet::Route, usize> = HashMap::new();
    for r in &s.archive_truth {
        *counts.entry(r).or_default() += 1;
    }
    let mut freqs: Vec<usize> = counts.values().copied().collect();
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    let total: usize = freqs.iter().sum();
    let top10: usize = freqs.iter().take(10).sum();
    assert!(
        top10 as f64 / total as f64 > 0.3,
        "top-10 routes should carry >30% of trips, got {:.2}",
        top10 as f64 / total as f64
    );
}

/// The suggested routes must connect the query's endpoints: start and end
/// near the first/last GPS fix.
#[test]
fn inferred_routes_span_the_query() {
    let s = scenario();
    let hris = Hris::new(&s.net, s.archive.clone(), HrisParams::default());
    for q in &s.queries {
        let query = resample_to_interval(&q.dense, 360.0);
        let top = hris.infer_top1(&query).unwrap();
        let pl = top.route.polyline(&s.net).unwrap();
        let first = query.points.first().unwrap().pos;
        let last = query.points.last().unwrap().pos;
        assert!(
            pl.start().dist(first) < 800.0,
            "route starts {} m from the first fix",
            pl.start().dist(first)
        );
        assert!(
            pl.end().dist(last) < 800.0,
            "route ends {} m from the last fix",
            pl.end().dist(last)
        );
    }
}
