//! Failure-injection and edge-case tests: the system must degrade
//! gracefully, never panic, on hostile inputs.

use hris::{Hris, HrisParams};
use hris_eval::metrics::accuracy_al;
use hris_geo::Point;
use hris_mapmatch::{IncrementalMatcher, IvmmMatcher, MapMatcher, StMatcher};
use hris_roadnet::{generator, NetworkConfig, RoadNetwork};
use hris_traj::{
    add_gps_noise, GpsPoint, SimConfig, Simulator, TrajId, Trajectory, TrajectoryArchive,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn net() -> RoadNetwork {
    generator::generate(&NetworkConfig::small(31))
}

fn tiny_archive(net: &RoadNetwork) -> TrajectoryArchive {
    let mut sim = Simulator::new(
        net,
        SimConfig {
            num_trips: 60,
            num_od_patterns: 8,
            min_trip_dist_m: 500.0,
            seed: 2,
            ..SimConfig::default()
        },
    );
    sim.generate_archive().0
}

fn simple_query(net: &RoadNetwork) -> Trajectory {
    let bbox = net.bbox();
    let a = bbox.min.lerp(bbox.max, 0.2);
    let b = bbox.min.lerp(bbox.max, 0.8);
    Trajectory::new(
        TrajId(0),
        vec![
            GpsPoint::new(a, 0.0),
            GpsPoint::new(a.midpoint(b), 200.0),
            GpsPoint::new(b, 400.0),
        ],
    )
}

#[test]
fn empty_archive_never_panics() {
    let net = net();
    let hris = Hris::new(&net, TrajectoryArchive::empty(), HrisParams::default());
    let q = simple_query(&net);
    let routes = hris.infer_routes(&q, 3);
    assert!(!routes.is_empty(), "shortest-path fallback still answers");
    for r in &routes {
        assert!(r.route.is_connected(&net));
    }
}

#[test]
fn off_map_query_falls_back_to_nearest_roads() {
    let net = net();
    let archive = tiny_archive(&net);
    let hris = Hris::new(&net, archive, HrisParams::default());
    let far = net.bbox().max + Point::new(50_000.0, 50_000.0);
    let q = Trajectory::new(
        TrajId(0),
        vec![
            GpsPoint::new(far, 0.0),
            GpsPoint::new(far + Point::new(1_000.0, 0.0), 600.0),
        ],
    );
    // Must not panic; the answer maps to the nearest network edge.
    let top = hris.infer_top1(&q);
    assert!(top.is_some());
}

#[test]
fn extreme_gps_noise_degrades_gracefully() {
    let net = net();
    let archive = tiny_archive(&net);
    let hris = Hris::new(&net, archive, HrisParams::default());
    let clean = simple_query(&net);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let noisy = add_gps_noise(&clean, 400.0, &mut rng);
    let top = hris.infer_top1(&noisy).expect("still answers");
    assert!(top.route.is_connected(&net));
}

#[test]
fn all_matchers_handle_two_point_queries() {
    let net = net();
    let q = Trajectory::new(
        TrajId(0),
        vec![
            GpsPoint::new(net.node(hris_roadnet::NodeId(0)), 0.0),
            GpsPoint::new(
                net.node(hris_roadnet::NodeId((net.num_nodes() - 1) as u32)),
                900.0,
            ),
        ],
    );
    let matchers: Vec<Box<dyn MapMatcher>> = vec![
        Box::new(IvmmMatcher::default()),
        Box::new(StMatcher::default()),
        Box::new(IncrementalMatcher::default()),
    ];
    for m in &matchers {
        let res = m.match_trajectory(&net, &q).expect("matched");
        assert_eq!(res.matched.len(), 2, "{}", m.name());
        assert!(res.route.is_connected(&net), "{}", m.name());
    }
}

#[test]
fn zero_and_one_point_queries() {
    let net = net();
    let archive = tiny_archive(&net);
    let hris = Hris::new(&net, archive, HrisParams::default());
    let empty = Trajectory::new(TrajId(0), vec![]);
    assert!(hris.infer_routes(&empty, 5).is_empty());
    let single = Trajectory::new(TrajId(0), vec![GpsPoint::new(net.bbox().center(), 0.0)]);
    let routes = hris.infer_routes(&single, 5);
    assert_eq!(routes.len(), 1);
    assert_eq!(routes[0].route.len(), 1);
}

#[test]
fn archive_with_single_short_trajectory() {
    let net = net();
    let lonely = Trajectory::new(
        TrajId(0),
        vec![
            GpsPoint::new(net.bbox().center(), 0.0),
            GpsPoint::new(net.bbox().center() + Point::new(120.0, 0.0), 30.0),
        ],
    );
    let hris = Hris::new(
        &net,
        TrajectoryArchive::new(vec![lonely]),
        HrisParams::default(),
    );
    let q = simple_query(&net);
    assert!(hris.infer_top1(&q).is_some());
}

#[test]
fn identical_points_in_query() {
    let net = net();
    let archive = tiny_archive(&net);
    let hris = Hris::new(&net, archive, HrisParams::default());
    let p = net.bbox().center();
    // Stationary query: same position, advancing time.
    let q = Trajectory::new(
        TrajId(0),
        vec![
            GpsPoint::new(p, 0.0),
            GpsPoint::new(p, 180.0),
            GpsPoint::new(p, 360.0),
        ],
    );
    let top = hris.infer_top1(&q).expect("answers");
    assert!((0.0..=1.0).contains(&accuracy_al(&top.route, &top.route, &net)));
}

#[test]
fn degenerate_hris_params_do_not_panic() {
    let net = net();
    let archive = tiny_archive(&net);
    let q = simple_query(&net);
    // Hostile parameter corners.
    let corner_cases = vec![
        HrisParams {
            phi_m: 1.0, // no references will be found
            ..HrisParams::default()
        },
        HrisParams {
            k1: 1,
            k2: 1,
            k3: 1,
            max_local_routes: 1,
            ..HrisParams::default()
        },
        HrisParams {
            lambda: 1, // empty λ-neighborhoods
            ..HrisParams::default()
        },
        HrisParams {
            beta: 1.0, // NNI admits almost nothing
            alpha_m: 0.0,
            ..HrisParams::default()
        },
        HrisParams {
            max_detour_ratio: 1.0,
            tgi_popularity_weight: 0.0, // paper-literal weighting
            ..HrisParams::default()
        },
    ];
    for params in corner_cases {
        let hris = Hris::new(&net, archive.clone(), params);
        let _ = hris.infer_routes(&q, 3); // may be empty, must not panic
    }
}
