//! Offline stand-in for `serde`, sufficient for this workspace.
//!
//! The build container cannot reach crates.io, so the real serde cannot be
//! fetched. This crate keeps the workspace source-compatible: it exposes
//! `Serialize`/`Deserialize` traits (plus the derive macros re-exported from
//! the vendored `serde_derive`) over a single JSON [`Value`] data model. The
//! vendored `serde_json` builds its `to_string`/`from_str`/`json!` API on
//! top of it.
//!
//! Only the surface this repository uses is implemented; it is not a general
//! serde replacement.

pub use serde_derive::{Deserialize, Serialize};

mod value;
pub use value::Value;

/// Serialization: convert `self` into a JSON [`Value`].
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Deserialization: reconstruct `Self` from a JSON [`Value`].
pub trait Deserialize: Sized {
    fn from_json_value(v: &Value) -> Result<Self, DeError>;

    /// Called by derived impls when a field is absent from the object.
    /// Overridden by `Option<T>` to yield `None` (lenient, like
    /// `#[serde(default)]` for options).
    fn from_missing_field(field: &str) -> Result<Self, DeError> {
        Err(DeError::msg(format!("missing field `{field}`")))
    }
}

/// Field lookup helper used by derived `Deserialize` impls.
#[must_use]
pub fn obj_get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ------------------------------------------------------------ primitives

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(DeError::msg(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    _ => Err(DeError::msg(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_json_value).collect(),
            _ => Err(DeError::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json_value(other)?)),
        }
    }

    fn from_missing_field(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) => Ok(($(
                        $t::from_json_value(
                            items.get($n).ok_or_else(|| DeError::msg("tuple too short"))?,
                        )?,
                    )+)),
                    _ => Err(DeError::msg("expected array for tuple")),
                }
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
