//! The JSON value model shared by the vendored `serde` and `serde_json`.

use std::fmt;
use std::ops::Index;

/// A parsed or constructed JSON value.
///
/// Objects preserve insertion order (`Vec` of pairs), which keeps derived
/// serialization stable and roundtrip-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| crate::obj_get(o, key))
    }

    /// Compact JSON text.
    #[must_use]
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Pretty JSON text (2-space indent).
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // `{}` prints the shortest decimal that roundtrips.
                    out.push_str(&f.to_string());
                } else {
                    // JSON has no Inf/NaN; real serde_json emits null.
                    out.push_str("null");
                }
            }
            Value::Str(s) => escape_into(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.render(out, indent, level + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, level);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    escape_into(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render(out, indent, level + 1);
                }
                if !members.is_empty() {
                    newline_indent(out, indent, level);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_compact())
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

// Literal comparisons used pervasively in tests: `value["k"] == 9`,
// `value["t"] == "Feature"`, `value[2] == 60.0`.
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
macro_rules! impl_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == Some(*other as i64)
            }
        }
    )*};
}
impl_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
