//! Offline stand-in for `rand_chacha`: [`ChaCha8Rng`] implemented as a real
//! ChaCha8 keystream (djb variant: 256-bit key, 64-bit block counter,
//! 64-bit stream id 0) over the vendored `rand` traits. Deterministic given
//! a seed; does not promise word-for-word stream compatibility with the
//! real `rand_chacha` crate's block-batched implementation.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds, keyed by a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    block: [u32; 16],
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.block = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16, // force refill on first use
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_crosses_block_boundaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        // 40 u64s = 80 words = 5 blocks; all draws must stay in range.
        for _ in 0..40 {
            let v = rng.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chacha_quarter_round_reference() {
        // RFC 8439 §2.1.1 test vector.
        let mut state = [0u32; 16];
        state[0] = 0x1111_1111;
        state[1] = 0x0102_0304;
        state[2] = 0x9b8d_6f43;
        state[3] = 0x0123_4567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a_92f4);
        assert_eq!(state[1], 0xcb1c_f8ce);
        assert_eq!(state[2], 0x4581_472e);
        assert_eq!(state[3], 0x5881_c4bb);
    }
}
