//! Offline stand-in for `rand` (0.8-style API surface).
//!
//! The build container cannot fetch crates.io, so this crate provides the
//! subset of `rand` the workspace uses: [`RngCore`], the [`Rng`] extension
//! trait with `gen_range`/`gen_bool`/`gen`, [`SeedableRng`] with the
//! standard splitmix64-based `seed_from_u64`, and [`rngs::StdRng`]
//! (xoshiro256++). Deterministic given a seed, statistically solid; it does
//! not promise stream compatibility with the real `rand` crate.

use std::ops::{Range, RangeInclusive};

/// Core random source: 32/64-bit words and byte fill.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction, with the conventional splitmix64 expansion for
/// `seed_from_u64`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// The standard splitmix64 step, used to expand small seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Value kinds that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

impl Standard for f64 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        unit_f64(rng.next_u64())
    }
}
impl Standard for f32 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for u32 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64()
    }
}
impl Standard for bool {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// `u64 → f64` uniform in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range (half-open or inclusive) that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Lemire's unbiased bounded sampling over `[0, span)`.
#[inline]
fn sample_u64_below<G: RngCore + ?Sized>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let offset = sample_u64_below(rng, span);
                ((self.start as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = sample_u64_below(rng, span + 1);
                ((lo as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}
impl_sample_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_sample_float!(f32, f64);

/// The user-facing extension trait (auto-implemented for every `RngCore`).
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self.next_u64()) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        sample_u64_below(self, denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // Avoid the all-zero state, which is a fixed point.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 1, 2];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&y));
            let z = rng.gen_range(0..=3u32);
            assert!(z <= 3);
        }
    }

    #[test]
    fn gen_bool_rates_are_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < 0.01 && max > 0.99);
    }
}
