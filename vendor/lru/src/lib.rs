//! Offline stand-in for the `lru` crate: a bounded least-recently-used map
//! with O(1) `get`/`put` via a slab-backed doubly-linked recency list.

use std::collections::HashMap;
use std::hash::Hash;
use std::num::NonZeroUsize;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A bounded LRU cache. Inserting beyond capacity evicts the least recently
/// used entry; `get` and `put` both count as uses.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    cap: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    #[must_use]
    pub fn new(cap: NonZeroUsize) -> Self {
        LruCache {
            map: HashMap::with_capacity(cap.get()),
            slab: Vec::with_capacity(cap.get()),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            cap: cap.get(),
        }
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    #[must_use]
    pub fn cap(&self) -> NonZeroUsize {
        NonZeroUsize::new(self.cap).expect("capacity is non-zero")
    }

    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        Some(&self.slab[idx].value)
    }

    /// Looks up `key` without touching recency.
    #[must_use]
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.slab[idx].value)
    }

    /// Inserts `key → value`, returning the previous value for `key` if any,
    /// and evicting the least recently used entry when at capacity.
    pub fn put(&mut self, key: K, value: V) -> Option<V> {
        if let Some(&idx) = self.map.get(&key) {
            let old = std::mem::replace(&mut self.slab[idx].value, value);
            self.detach(idx);
            self.attach_front(idx);
            return Some(old);
        }
        if self.map.len() >= self.cap {
            self.evict_lru();
        }
        let entry = Entry {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slab[idx] = entry;
                idx
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
        None
    }

    /// Removes and returns the least recently used entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)>
    where
        V: Clone,
    {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let key = self.slab[idx].key.clone();
        let value = self.slab[idx].value.clone();
        self.detach(idx);
        self.map.remove(&key);
        self.free.push(idx);
        Some((key, value))
    }

    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn evict_lru(&mut self) {
        if self.tail == NIL {
            return;
        }
        let idx = self.tail;
        self.detach(idx);
        let key = self.slab[idx].key.clone();
        self.map.remove(&key);
        self.free.push(idx);
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn attach_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(cap: usize) -> LruCache<u32, u32> {
        LruCache::new(NonZeroUsize::new(cap).unwrap())
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = cache(2);
        c.put(1, 10);
        c.put(2, 20);
        assert_eq!(c.get(&1), Some(&10)); // 1 becomes MRU
        c.put(3, 30); // evicts 2
        assert!(c.contains(&1));
        assert!(!c.contains(&2));
        assert!(c.contains(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn put_updates_and_promotes() {
        let mut c = cache(2);
        c.put(1, 10);
        c.put(2, 20);
        assert_eq!(c.put(1, 11), Some(10)); // update promotes 1
        c.put(3, 30); // evicts 2
        assert_eq!(c.get(&1), Some(&11));
        assert!(!c.contains(&2));
    }

    #[test]
    fn pop_lru_order() {
        let mut c = cache(3);
        c.put(1, 1);
        c.put(2, 2);
        c.put(3, 3);
        let _ = c.get(&1);
        assert_eq!(c.pop_lru(), Some((2, 2)));
        assert_eq!(c.pop_lru(), Some((3, 3)));
        assert_eq!(c.pop_lru(), Some((1, 1)));
        assert_eq!(c.pop_lru(), None);
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let mut c = cache(2);
        for i in 0..100u32 {
            c.put(i, i * 2);
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&99), Some(&198));
        assert_eq!(c.get(&98), Some(&196));
        assert!(!c.contains(&97));
    }
}
