//! The `Strategy` trait and the combinators the workspace's tests use.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating random values of `Self::Value`. Unlike the real
/// crate there is no value tree: generation is direct and nothing shrinks.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range(self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident / $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
