//! Offline stand-in for `proptest`: the strategy grammar this workspace's
//! property tests use (bounded ranges, tuples, `prop::collection::vec`,
//! `prop_map`, `prop_flat_map`) driven by a deterministic per-test RNG.
//! Failing inputs are reported but not shrunk.

pub mod strategy;

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Subset of the real crate's config: how many passing cases to demand
    /// and how many rejected (`prop_assume!`) inputs to tolerate overall.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    impl ProptestConfig {
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    #[derive(Debug)]
    pub enum TestCaseError {
        /// Input did not satisfy a `prop_assume!`; draw a replacement.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash
    }

    /// Drives one property: generates inputs until `config.cases` pass,
    /// panicking on the first failing case. The RNG seed is derived from the
    /// test's source location, so every run replays the same inputs.
    pub fn run<F>(config: ProptestConfig, file: &str, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let seed = fnv1a(file.as_bytes()) ^ fnv1a(name.as_bytes()).rotate_left(17);
        let mut rng = TestRng::seed_from_u64(seed);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(what)) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest '{name}' ({file}): gave up after {rejected} rejected \
                             inputs ({what}); only {passed}/{} cases passed",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' ({file}) failed after {passed} passing cases: {msg}")
                }
            }
        }
    }
}

/// Mirror of the real crate's `prelude::prop` module alias.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run($config, file!(), stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::format!("assumption failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        // `matches!(..., false)` instead of `!cond` so a float comparison in
        // `$cond` does not trip clippy::neg_cmp_op_on_partial_ord at every
        // call site.
        if ::std::matches!($cond, false) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if ::std::matches!($cond, false) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    ::std::stringify!($cond),
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    __left,
                    __right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    ::std::format!($($fmt)+),
                    __left,
                    __right
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if __left == __right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    __left
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if __left == __right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} != {}`: {}\n  both: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    ::std::format!($($fmt)+),
                    __left
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn point() -> impl Strategy<Value = (f64, f64)> {
        (-100.0..100.0f64, -100.0..100.0f64)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -3.0..7.0f64, n in 1usize..20, s in 0u32..5) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((1..20).contains(&n));
            prop_assert!(s < 5);
        }

        #[test]
        fn vec_and_map_compose(
            pts in prop::collection::vec(point().prop_map(|(x, y)| x + y), 0..10),
        ) {
            prop_assert!(pts.len() < 10);
            for p in &pts {
                prop_assert!(p.abs() <= 200.0, "out of range: {p}");
            }
        }

        #[test]
        fn flat_map_uses_inner_value(
            v in (2usize..6).prop_flat_map(|n| prop::collection::vec(0..n, 1..4).prop_map(move |xs| (n, xs))),
        ) {
            let (n, xs) = v;
            prop_assert!(!xs.is_empty() && xs.len() < 4);
            for &x in &xs {
                prop_assert!(x < n);
            }
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..100) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
            prop_assert_ne!(a, 1);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::SeedableRng;
        let strat = crate::collection::vec(0.0..1.0f64, 1..8);
        let mut a = TestRng::seed_from_u64(9);
        let mut b = TestRng::seed_from_u64(9);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
