//! Offline stand-in for `criterion`: the `criterion_group!`/`criterion_main!`
//! harness surface this workspace's benches use, measuring wall-clock mean
//! time per iteration with one warm-up pass. No statistics, plots, or saved
//! baselines — each benchmark prints a single line.

use std::fmt::Display;
use std::time::Instant;

/// Opaque-to-the-optimizer identity, so benchmark bodies are not elided.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark id rendered as `function` or `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Runs `f` once to warm up, then `iters` timed times, recording the
    /// mean wall-clock nanoseconds per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_secs_f64() * 1e9 / self.iters as f64;
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(id: &str, mean_ns: f64) {
    println!("{id:<56} time: {:>12}/iter", format_time(mean_ns));
}

/// Top-level harness; builder methods mirror the real crate's `Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            mean_ns: 0.0,
        };
        f(&mut bencher);
        report(&id.id, bencher.mean_ns);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// Named group whose benchmark ids are prefixed `group/…`.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            iters: self.criterion.sample_size as u64,
            mean_ns: 0.0,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id.id), bencher.mean_ns);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            iters: self.criterion.sample_size as u64,
            mean_ns: 0.0,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.id), bencher.mean_ns);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_mean() {
        let mut c = Criterion::default().sample_size(5);
        let mut group = c.benchmark_group("g");
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("work", 3), &3u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                (0..n * 1000).sum::<u64>()
            });
        });
        group.finish();
        assert!(ran >= 6); // warm-up + samples
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter("50pct").id, "50pct");
    }

    #[test]
    fn time_units() {
        assert_eq!(format_time(12.34), "12.3 ns");
        assert_eq!(format_time(45_600.0), "45.60 us");
        assert_eq!(format_time(7_890_000.0), "7.89 ms");
    }
}
