//! Offline stand-in for `serde_derive`.
//!
//! The build container has no access to crates.io, so this workspace vendors
//! a minimal serde implementation (see `vendor/serde`). This proc-macro crate
//! derives that implementation's `Serialize`/`Deserialize` traits for the
//! shapes the workspace actually uses:
//!
//! - structs with named fields (including `#[serde(skip)]` fields and
//!   lifetime-generic borrow-only serialize wrappers),
//! - newtype tuple structs (`struct SegmentId(pub u32)` — serialized
//!   transparently as the inner value, like real serde),
//! - enums with unit variants only (serialized as the variant-name string).
//!
//! No `syn`/`quote`: the input item is parsed directly from the
//! `proc_macro::TokenStream`, which is easy for this restricted grammar.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: `(field_name, skip)` in declaration order.
    Named(Vec<(String, bool)>),
    /// Single-field tuple struct.
    Newtype,
    /// Enum of unit variants.
    UnitEnum(Vec<String>),
}

struct Input {
    name: String,
    /// Raw generics text, e.g. `<'a>`; empty when the type is not generic.
    generics: String,
    shape: Shape,
}

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter();
    // Skip attributes/visibility until the `struct` / `enum` keyword.
    let mut kind = String::new();
    for tt in iter.by_ref() {
        match tt {
            TokenTree::Punct(ref p) if p.as_char() == '#' => {}
            TokenTree::Group(_) => {}
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = s;
                    break;
                }
            }
            _ => {}
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected type name, got {other:?}"),
    };
    // Everything up to the body group is the generics list.
    let mut generics = String::new();
    let mut body = None;
    for tt in iter.by_ref() {
        match tt {
            TokenTree::Group(g)
                if matches!(g.delimiter(), Delimiter::Brace | Delimiter::Parenthesis) =>
            {
                body = Some(g);
                break;
            }
            other => generics.push_str(&other.to_string()),
        }
    }
    let body = body.expect("derive: type body not found");
    let shape = if kind == "enum" {
        Shape::UnitEnum(parse_unit_variants(body.stream()))
    } else if body.delimiter() == Delimiter::Parenthesis {
        Shape::Newtype
    } else {
        Shape::Named(parse_named_fields(body.stream()))
    };
    Input {
        name,
        generics,
        shape,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<(String, bool)> {
    let mut iter = stream.into_iter();
    let mut fields = Vec::new();
    'outer: loop {
        // attrs / visibility / field name
        let mut skip = false;
        let name = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(attr)) = iter.next() {
                        let text = attr.stream().to_string();
                        if text.starts_with("serde") && text.contains("skip") {
                            skip = true;
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => {
                    let s = id.to_string();
                    if s != "pub" {
                        break s;
                    }
                }
                Some(TokenTree::Group(_)) => {} // `pub(crate)` payload
                Some(_) => {}
                None => break 'outer,
            }
        };
        // Consume `: Type` up to the next top-level comma (angle-bracket aware).
        let mut depth = 0i64;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push((name, skip));
    }
    fields
}

fn parse_unit_variants(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter();
    let mut variants = Vec::new();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // attribute payload (`#[default]`, docs)
            }
            TokenTree::Ident(id) => variants.push(id.to_string()),
            TokenTree::Group(_) => panic!("serde derive stand-in supports unit variants only"),
            _ => {}
        }
    }
    variants
}

fn impl_header(trait_name: &str, input: &Input) -> String {
    if input.generics.is_empty() {
        format!("impl serde::{} for {} ", trait_name, input.name)
    } else {
        format!(
            "impl{} serde::{} for {}{} ",
            input.generics, trait_name, input.name, input.generics
        )
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let body = match &input.shape {
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for (f, skip) in fields {
                if *skip {
                    continue;
                }
                pushes.push_str(&format!(
                    "__obj.push((\"{f}\".to_string(), serde::Serialize::to_json_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut __obj: Vec<(String, serde::Value)> = Vec::new();\n{pushes}serde::Value::Obj(__obj)"
            )
        }
        Shape::Newtype => "serde::Serialize::to_json_value(&self.0)".to_string(),
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{}::{v} => serde::Value::Str(\"{v}\".to_string()),\n",
                        input.name
                    )
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "{header}{{\n fn to_json_value(&self) -> serde::Value {{\n{body}\n}}\n}}",
        header = impl_header("Serialize", &input)
    );
    out.parse().expect("derived Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let mut inits = String::new();
            for (f, skip) in fields {
                if *skip {
                    inits.push_str(&format!("{f}: Default::default(),\n"));
                } else {
                    inits.push_str(&format!(
                        "{f}: match serde::obj_get(__obj, \"{f}\") {{\n\
                         Some(__v) => serde::Deserialize::from_json_value(__v)?,\n\
                         None => serde::Deserialize::from_missing_field(\"{f}\")?,\n\
                         }},\n"
                    ));
                }
            }
            format!(
                "let __obj = __value.as_obj().ok_or_else(|| serde::DeError::msg(\"expected object for {name}\"))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Shape::Newtype => format!("Ok({name}(serde::Deserialize::from_json_value(__value)?))"),
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Some(\"{v}\") => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "match __value.as_str() {{\n{arms}_ => Err(serde::DeError::msg(\"unknown variant for {name}\")),\n}}"
            )
        }
    };
    let out = format!(
        "{header}{{\n fn from_json_value(__value: &serde::Value) -> Result<Self, serde::DeError> {{\n{body}\n}}\n}}",
        header = impl_header("Deserialize", &input)
    );
    out.parse().expect("derived Deserialize impl parses")
}
