//! Offline stand-in for `bytes`: just enough of `Bytes`/`BytesMut` and the
//! `Buf`/`BufMut` traits for the trajectory archive's binary codec
//! (little-endian u32/f64 records, cheap slicing).

use std::ops::Range;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer (shared storage + view range).
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    range: Range<usize>,
}

impl Bytes {
    #[must_use]
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(Vec::new()),
            range: 0..0,
        }
    }

    #[must_use]
    pub fn from_vec(data: Vec<u8>) -> Self {
        let len = data.len();
        Bytes {
            data: Arc::from(data),
            range: 0..len,
        }
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.range.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.range.clone()]
    }

    /// A sub-view sharing the same storage.
    #[must_use]
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            range: self.range.start + range.start..self.range.start + range.end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Read-cursor operations over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn chunk(&self) -> &[u8];

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        f64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.range.start += n;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Growable byte sink.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

/// Write operations over a byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(7);
        buf.put_f64_le(2.5);
        buf.put_f64_le(-1.0);
        let bytes = buf.freeze();
        assert_eq!(bytes.len(), 20);

        let mut r = bytes.clone();
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_f64_le(), 2.5);
        assert_eq!(r.get_f64_le(), -1.0);
        assert_eq!(r.remaining(), 0);

        let cut = bytes.slice(0..10);
        assert_eq!(cut.len(), 10);
        let mut c = cut;
        assert_eq!(c.get_u32_le(), 7);
        assert_eq!(c.remaining(), 6);
    }
}
