//! Offline stand-in for `serde_json`, built on the vendored `serde`'s
//! [`Value`] model: `to_string`/`to_string_pretty`/`from_str`, plus a
//! `json!` literal macro covering the syntax this workspace uses (nested
//! object/array literals, `null`/`true`/`false`, and arbitrary interpolated
//! expressions whose types implement `Serialize`).

pub use serde::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}
impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes any `Serialize` into a [`Value`] (used by `json!`).
#[must_use]
pub fn to_value<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_json_value()
}

/// Compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    Ok(v.to_json_value().render_compact())
}

/// Pretty JSON text (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    Ok(v.to_json_value().render_pretty())
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_json_value(&value)?)
}

// ---------------------------------------------------------------- parser

fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error(format!("expected `{lit}` at byte {pos}", pos = *pos)))
    }
}

fn parse_at(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => expect(b, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_at(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => {
                        return Err(Error(format!(
                            "expected `,` or `]` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_at(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => {
                        return Err(Error(format!(
                            "expected `,` or `}}` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at byte {pos}", pos = *pos)));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|_| Error("invalid utf-8".into()));
            }
            b'\\' => {
                let esc = *b
                    .get(*pos)
                    .ok_or_else(|| Error("truncated escape".into()))?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| Error("bad \\u escape".into()))?;
                        *pos += 4;
                        let ch = char::from_u32(code)
                            .ok_or_else(|| Error("bad \\u code point".into()))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                }
            }
            c => out.push(c),
        }
    }
    Err(Error("unterminated string".into()))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| Error("bad number".into()))?;
    if text.is_empty() || text == "-" {
        return Err(Error(format!("expected value at byte {start}")));
    }
    if !is_float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error(format!("bad number `{text}`")))
}

// ---------------------------------------------------------------- json!

/// Builds a [`Value`] from a JSON literal. Supports the standard serde_json
/// syntax subset used in this workspace: nested `{...}`/`[...]` literals,
/// `null`/`true`/`false`, string-literal keys, trailing commas, and
/// interpolated Rust expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::Value::Arr($crate::json_array!([] $($tt)*)) };
    ({ $($tt:tt)* }) => { $crate::Value::Obj($crate::json_object!([] $($tt)*)) };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Array muncher: accumulates element `Value` expressions in `[...]`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    // Done.
    ([ $($out:expr,)* ]) => { vec![ $($out),* ] };
    // Next element is a container/keyword literal.
    ([ $($out:expr,)* ] null $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($out,)* $crate::Value::Null, ] $($($rest)*)?)
    };
    ([ $($out:expr,)* ] true $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($out,)* $crate::Value::Bool(true), ] $($($rest)*)?)
    };
    ([ $($out:expr,)* ] false $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($out,)* $crate::Value::Bool(false), ] $($($rest)*)?)
    };
    ([ $($out:expr,)* ] [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($out,)* $crate::json!([ $($arr)* ]), ] $($($rest)*)?)
    };
    ([ $($out:expr,)* ] { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($out,)* $crate::json!({ $($obj)* }), ] $($($rest)*)?)
    };
    // General expression element: munch tts up to the next top-level comma.
    ([ $($out:expr,)* ] $($rest:tt)+) => {
        $crate::json_array_expr!([ $($out,)* ] () $($rest)+)
    };
}

/// Accumulates expression tokens until a top-level comma or the end.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_expr {
    ([ $($out:expr,)* ] ($($acc:tt)+)) => {
        $crate::json_array!([ $($out,)* $crate::to_value(&($($acc)+)), ])
    };
    ([ $($out:expr,)* ] ($($acc:tt)+) , $($rest:tt)*) => {
        $crate::json_array!([ $($out,)* $crate::to_value(&($($acc)+)), ] $($rest)*)
    };
    ([ $($out:expr,)* ] ($($acc:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_array_expr!([ $($out,)* ] ($($acc)* $next) $($rest)*)
    };
}

/// Object muncher: accumulates `(key, Value)` pair expressions in `{...}`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    // Done.
    ([ $($out:expr,)* ]) => { vec![ $($out),* ] };
    // `"key": <container or keyword literal>`
    ([ $($out:expr,)* ] $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_object!([ $($out,)* ($key.to_string(), $crate::Value::Null), ] $($($rest)*)?)
    };
    ([ $($out:expr,)* ] $key:literal : true $(, $($rest:tt)*)?) => {
        $crate::json_object!([ $($out,)* ($key.to_string(), $crate::Value::Bool(true)), ] $($($rest)*)?)
    };
    ([ $($out:expr,)* ] $key:literal : false $(, $($rest:tt)*)?) => {
        $crate::json_object!([ $($out,)* ($key.to_string(), $crate::Value::Bool(false)), ] $($($rest)*)?)
    };
    ([ $($out:expr,)* ] $key:literal : [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_object!([ $($out,)* ($key.to_string(), $crate::json!([ $($arr)* ])), ] $($($rest)*)?)
    };
    ([ $($out:expr,)* ] $key:literal : { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_object!([ $($out,)* ($key.to_string(), $crate::json!({ $($obj)* })), ] $($($rest)*)?)
    };
    // `"key": <general expression>` — munch until the next top-level comma.
    ([ $($out:expr,)* ] $key:literal : $($rest:tt)+) => {
        $crate::json_object_expr!([ $($out,)* ] $key () $($rest)+)
    };
}

/// Accumulates an object value's expression tokens until a top-level comma.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_expr {
    ([ $($out:expr,)* ] $key:literal ($($acc:tt)+)) => {
        $crate::json_object!([ $($out,)* ($key.to_string(), $crate::to_value(&($($acc)+))), ])
    };
    ([ $($out:expr,)* ] $key:literal ($($acc:tt)+) , $($rest:tt)*) => {
        $crate::json_object!([ $($out,)* ($key.to_string(), $crate::to_value(&($($acc)+))), ] $($rest)*)
    };
    ([ $($out:expr,)* ] $key:literal ($($acc:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_object_expr!([ $($out,)* ] $key ($($acc)* $next) $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let v: Value = from_str(r#"{"a": [1, 2.5, "x", null, true], "b": {"c": -3}}"#).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["a"][2], "x");
        assert!(v["a"][3].is_null());
        assert_eq!(v["b"]["c"], -3);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn json_macro_shapes() {
        let n = 3usize;
        let v = json!({
            "type": "FeatureCollection",
            "count": n,
            "nested": { "ok": true, "vals": [1.5, 2.5] },
            "items": [null, {"x": 1}, [2, 3]],
            "expr": format!("n={n}"),
        });
        assert_eq!(v["type"], "FeatureCollection");
        assert_eq!(v["count"], 3);
        assert_eq!(v["nested"]["vals"][1], 2.5);
        assert_eq!(v["items"][1]["x"], 1);
        assert_eq!(v["expr"], "n=3");
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::Str("a\"b\\c\nd".to_string());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
    }
}
