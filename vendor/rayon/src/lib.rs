//! Offline stand-in for `rayon`: the `par_iter().map(..).collect()` shape
//! over slices and `Vec`s, executed on `std::thread::scope` with one
//! contiguous chunk per available core. Output order always matches input
//! order, and a single-core host degrades to a plain sequential loop.

/// Number of worker threads a parallel call will use.
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// `.par_iter()` entry point, implemented for `[T]` and `Vec<T>`.
pub trait IntoParallelRefIterator<'data> {
    type Item: Sync + 'data;
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T: Sync, R: Send, F: Fn(&'data T) -> R + Sync> ParMap<'data, T, F> {
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_ordered(self.items, &self.f).into_iter().collect()
    }
}

fn run_ordered<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    let workers = current_num_threads().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<R> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("parallel worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn matches_sequential_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        let par: Vec<u64> = items.par_iter().map(|&x| x * x + 1).collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn borrows_from_input_slice() {
        let words = ["alpha".to_string(), "beta".to_string()];
        let lens: Vec<(&str, usize)> = words.par_iter().map(|w| (w.as_str(), w.len())).collect();
        assert_eq!(lens, vec![("alpha", 5), ("beta", 4)]);
    }
}
