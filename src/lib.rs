//! Workspace facade: re-exports the HRIS crates for the integration tests
//! and runnable examples that live at the repository root.
//!
//! The actual functionality lives in the member crates:
//! - [`hris_geo`] — geometry kernels;
//! - [`hris_rtree`] — the R-tree spatial index;
//! - [`hris_roadnet`] — the road-network graph, shortest paths and the
//!   synthetic city generator;
//! - [`hris_traj`] — trajectories, preprocessing and the taxi simulator;
//! - [`hris_mapmatch`] — the Incremental / ST-Matching / IVMM baselines;
//! - [`hris`] — the History-based Route Inference System itself;
//! - [`hris_eval`] — metrics, scenarios and the per-figure experiments.

pub use hris;
pub use hris_eval;
pub use hris_geo;
pub use hris_mapmatch;
pub use hris_roadnet;
pub use hris_router;
pub use hris_rtree;
pub use hris_traj;
