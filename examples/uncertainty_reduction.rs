//! Uncertainty reduction: the paper's core framing. For one sparse
//! trajectory, count how many routes are *topologically* possible between
//! consecutive fixes, then show how HRIS cuts them down to a handful of
//! scored suggestions.
//!
//! ```text
//! cargo run --release --example uncertainty_reduction
//! ```

use hris::prelude::*;
use hris_eval::metrics::accuracy_al;
use hris_eval::scenario::{Scenario, ScenarioConfig};
use hris_roadnet::{NodeId, RoadNetwork};
use hris_traj::resample_to_interval;
use std::collections::HashMap;

/// Counts simple paths between two vertices up to a hop budget — the raw
/// "route uncertainty" a sparse pair leaves open. Capped to keep the
/// explosion printable.
fn count_paths(net: &RoadNetwork, from: NodeId, to: NodeId, max_hops: usize, cap: u64) -> u64 {
    fn rec(
        net: &RoadNetwork,
        cur: NodeId,
        to: NodeId,
        hops_left: usize,
        on_path: &mut Vec<NodeId>,
        count: &mut u64,
        cap: u64,
    ) {
        if *count >= cap {
            return;
        }
        if cur == to {
            *count += 1;
            return;
        }
        if hops_left == 0 {
            return;
        }
        for &sid in net.out_segments(cur) {
            let next = net.segment(sid).to;
            if on_path.contains(&next) {
                continue;
            }
            on_path.push(next);
            rec(net, next, to, hops_left - 1, on_path, count, cap);
            on_path.pop();
        }
    }
    let mut count = 0;
    let mut on_path = vec![from];
    rec(net, from, to, max_hops, &mut on_path, &mut count, cap);
    count
}

fn main() {
    let mut cfg = ScenarioConfig::quick(23);
    cfg.num_queries = 3;
    let s = Scenario::build(cfg);
    let q = &s.queries[0];
    let query = resample_to_interval(&q.dense, 360.0); // 6-minute fixes
    println!(
        "query: {} fixes at ~6 min interval; true route {:.1} km\n",
        query.len(),
        q.truth.length(&s.net) / 1000.0
    );

    // Raw uncertainty: simple paths between consecutive fixes.
    println!("raw route uncertainty between consecutive fixes:");
    let cap = 100_000u64;
    for (i, w) in query.points.windows(2).enumerate() {
        let a = s.net.nearest_segment(w[0].pos).expect("on map").segment;
        let b = s.net.nearest_segment(w[1].pos).expect("on map").segment;
        let (from, to) = (s.net.segment(a).to, s.net.segment(b).from);
        // Hop budget: enough segments to plausibly cover the gap (detour
        // factor 1.6 over the straight line, ~250 m per block edge).
        let gap = w[0].pos.dist(w[1].pos);
        let hops = ((gap * 1.6 / 250.0).ceil() as usize).clamp(4, 26);
        let n = count_paths(&s.net, from, to, hops, cap);
        let shown = if n >= cap {
            format!(">{cap}")
        } else {
            n.to_string()
        };
        println!("  pair {i}: {shown} topologically possible simple routes");
    }

    // HRIS: a handful of scored suggestions.
    let hris = Hris::new(&s.net, s.archive.clone(), HrisParams::default());
    let suggestions = hris.infer_routes(&query, 5);
    println!(
        "\nHRIS reduces this to {} suggested routes:",
        suggestions.len()
    );
    let mut seen_acc: HashMap<usize, f64> = HashMap::new();
    for (i, sr) in suggestions.iter().enumerate() {
        let acc = accuracy_al(&q.truth, &sr.route, &s.net);
        seen_acc.insert(i, acc);
        println!(
            "  #{}: {:.1} km, log-score {:.2}, A_L vs truth {:.3}",
            i + 1,
            sr.route.length(&s.net) / 1000.0,
            sr.log_score,
            acc
        );
    }
    let best = seen_acc.values().copied().fold(0.0, f64::max);
    println!(
        "\nbest suggestion reaches A_L = {best:.3}; the uncertainty collapsed from\n\
         thousands of feasible routes per gap to a shortlist a human (or a\n\
         downstream mining job) can actually use."
    );
}
