//! GeoJSON export: dump the synthetic city, one low-rate query and its
//! inferred route into files you can drop straight onto geojson.io or
//! kepler.gl.
//!
//! ```text
//! cargo run --release --example export_geojson [output_dir]
//! ```

use hris::prelude::*;
use hris_eval::scenario::{Scenario, ScenarioConfig};
use hris_geo::{LatLon, LocalProjection};
use hris_traj::{geojson, resample_to_interval};

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "geojson_out".to_string());
    std::fs::create_dir_all(&dir).expect("create output directory");

    let mut cfg = ScenarioConfig::quick(31);
    cfg.num_queries = 1;
    let s = Scenario::build(cfg);
    // Pretend the synthetic city sits in Beijing (the paper's venue).
    let proj = LocalProjection::new(LatLon::new(39.9042, 116.4074));

    // 1. The road network.
    let net_fc = geojson::network_collection(&s.net, Some(&proj));
    write(&dir, "network.geojson", &net_fc);

    // 2. The query: dense truth, sparse observation, inferred route.
    let q = &s.queries[0];
    let sparse = resample_to_interval(&q.dense, 360.0);
    let hris = Hris::new(&s.net, s.archive.clone(), HrisParams::default());
    let top = hris.infer_top1(&sparse).expect("inference succeeds");

    let features = vec![
        geojson::trajectory_feature(&sparse, Some(&proj)),
        geojson::route_feature(&q.truth, &s.net, Some(&proj)),
        geojson::route_feature(&top.route, &s.net, Some(&proj)),
    ];
    write(
        &dir,
        "query_and_routes.geojson",
        &geojson::feature_collection(features),
    );

    println!(
        "wrote {dir}/network.geojson ({} segments) and {dir}/query_and_routes.geojson",
        s.net.num_segments()
    );
    println!(
        "query: {} sparse fixes; truth {:.1} km; inferred {:.1} km (A_L = {:.3})",
        sparse.len(),
        q.truth.length(&s.net) / 1000.0,
        top.route.length(&s.net) / 1000.0,
        hris_eval::metrics::accuracy_al(&q.truth, &top.route, &s.net)
    );
}

fn write(dir: &str, name: &str, value: &serde_json::Value) {
    let path = format!("{dir}/{name}");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serialise"),
    )
    .expect("write file");
}
