//! Map-matching shootout: HRIS vs Incremental vs ST-Matching vs IVMM on
//! the same low-sampling-rate queries — a miniature of Figure 8a.
//!
//! ```text
//! cargo run --release --example map_matching_shootout [interval_seconds]
//! ```

use hris::prelude::*;
use hris_eval::metrics::accuracy_al;
use hris_eval::scenario::{Scenario, ScenarioConfig};
use hris_mapmatch::{HmmMatcher, IncrementalMatcher, IvmmMatcher, MapMatcher, StMatcher};
use hris_traj::resample_to_interval;

fn main() {
    let interval: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(540.0);

    let mut cfg = ScenarioConfig::quick(5);
    cfg.num_queries = 6;
    let s = Scenario::build(cfg);
    println!(
        "scenario: {} segments, {} archived trips, {} queries at {:.0} s interval\n",
        s.net.num_segments(),
        s.archive.num_trajectories(),
        s.queries.len(),
        interval
    );

    let hris = Hris::new(&s.net, s.archive.clone(), HrisParams::default());
    let hris_matcher = HrisMatcher { hris: &hris };
    let ivmm = IvmmMatcher::default();
    let st = StMatcher::default();
    let inc = IncrementalMatcher::default();
    let hmm = HmmMatcher::default();
    let matchers: Vec<&dyn MapMatcher> = vec![&hris_matcher, &ivmm, &st, &inc, &hmm];

    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "query", "HRIS", "IVMM", "ST-Matching", "Incremental", "HMM"
    );
    let mut sums = vec![0.0f64; matchers.len()];
    for (qi, q) in s.queries.iter().enumerate() {
        let query = resample_to_interval(&q.dense, interval);
        let mut row = format!("{qi:>6}");
        for (mi, m) in matchers.iter().enumerate() {
            let acc = m
                .match_trajectory(&s.net, &query)
                .map(|r| accuracy_al(&q.truth, &r.route, &s.net))
                .unwrap_or(0.0);
            sums[mi] += acc;
            row.push_str(&format!(" {acc:>10.3}"));
        }
        println!("{row}");
    }
    let n = s.queries.len() as f64;
    println!(
        "{:>6} {:>10.3} {:>10.3} {:>12.3} {:>12.3} {:>10.3}",
        "mean",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n,
        sums[4] / n
    );
    println!(
        "\nAt {:.0}-second sampling the history-based inference keeps its edge:\n\
         the baselines can only connect distant fixes with shortest paths,\n\
         while HRIS threads the routes the archive shows people actually drive.",
        interval
    );
}
