//! Live telemetry serving: an owned [`EngineHandle`] follows a streaming
//! archive while its zero-dependency HTTP server exposes `/metrics`,
//! `/healthz`, `/varz` and `/debug/slow` — then the example scrapes its own
//! endpoints so the run is self-contained and self-terminating. A final
//! sharded section runs one cross-shard query and prints its stitched
//! span tree plus the audit document served from `/debug/explain/<id>`.
//!
//! ```text
//! cargo run --release --example telemetry_server
//! ```
//!
//! While it runs (or with the sleep at the end stretched out), point a real
//! scraper at it:
//!
//! ```text
//! curl http://127.0.0.1:<port>/metrics
//! curl http://127.0.0.1:<port>/healthz
//! curl http://127.0.0.1:<port>/debug/slow
//! ```

use hris::prelude::*;
use hris::MetricsRegistry;
use hris_geo::Point;
use hris_roadnet::{generator, NetworkConfig};
use hris_router::{ShardPlan, ShardedEngine};
use hris_traj::{resample_to_interval, simulator, GpsPoint, SimConfig, Simulator, TrajId, Trajectory};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// A plain-socket GET, so the example needs no HTTP client either.
fn curl(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry server");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: example\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw
}

fn main() {
    // 1. City, simulated fleet, and a day-one archive.
    let net = Arc::new(generator::generate(&NetworkConfig::default()));
    let mut sim = Simulator::new(
        &net,
        SimConfig {
            num_trips: 900,
            num_od_patterns: 30,
            min_trip_dist_m: 3_000.0,
            seed: 11,
            ..SimConfig::default()
        },
    );
    let (archive, _truth) = sim.generate_archive();
    let mut trips = archive.trajectories().to_vec();
    let stream = trips.split_off(300);

    // 2. One shared registry: the ingest writer and the engine handle both
    //    record into it, so a single /metrics scrape covers the pipeline.
    let registry = Arc::new(MetricsRegistry::new());
    let mut writer = ArchiveWriter::new(TrajectoryArchive::new(trips));
    writer.observe(&registry);
    let cfg = EngineConfig::builder()
        .observability(true)
        .span_sampling(4) // 1-in-4 queries carry a full span tree
        .staleness_bound_s(30.0)
        .build()
        .expect("valid config");
    let handle = Arc::new(EngineHandle::live_with_registry(
        Arc::clone(&net),
        writer.reader(),
        HrisParams::default(),
        cfg,
        Arc::clone(&registry),
    ));

    // 3. Start the telemetry server on an ephemeral port.
    let server = handle.serve_metrics("127.0.0.1:0").expect("bind server");
    println!("telemetry server listening on http://{}", server.addr());

    // 4. Traffic: a query thread hammers the handle while this thread
    //    streams the rest of the fleet into the archive, epoch by epoch.
    let (_, _, route) = sim
        .od_with_dist(4_000.0, 6_000.0)
        .expect("found a suitable trip");
    let dense = simulator::drive_route(&net, &route, 0.0, 20.0, 0.8).expect("route drivable");
    let query = resample_to_interval(&Trajectory::new(TrajId(0), dense), 180.0);
    let querier = {
        let handle = Arc::clone(&handle);
        let query = query.clone();
        std::thread::spawn(move || {
            for _ in 0..6 {
                let _ = handle.infer_batch_detailed(&[query.clone(), query.clone()], 2);
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        })
    };
    for chunk in stream.chunks(200) {
        writer.append_batch(chunk.to_vec());
        let snap = writer.publish();
        println!(
            "published epoch {}: {} trips ({:.3}s old)",
            snap.epoch(),
            snap.num_trajectories(),
            snap.age_seconds()
        );
    }
    querier.join().expect("query thread");

    // 5. Scrape our own endpoints, exactly as an operator would.
    let health = curl(server.addr(), "/healthz");
    println!("\n/healthz → {}", health.lines().next().unwrap_or_default());
    let metrics = curl(server.addr(), "/metrics");
    for line in metrics.lines().filter(|l| {
        l.starts_with("hris_engine_queries_total")
            || l.starts_with("hris_snapshot_age_seconds")
            || l.starts_with("hris_archive_epoch")
            || l.starts_with("hris_engine_slo_")
    }) {
        println!("/metrics → {line}");
    }
    let obs = handle.observability().expect("instrumented handle");
    println!("\nrolling latency: {}", obs.rolling_latency_json());
    if let Some(ingest) = writer.rolling_ingest_json(60.0) {
        println!("rolling ingest:  {ingest}");
    }
    let sampled = obs.traces().iter().filter(|t| !t.spans.is_empty()).count();
    println!(
        "span trees captured on {sampled}/{} retained traces (1-in-4 sampling)",
        obs.traces().len()
    );

    // 6. Clean shutdown: the server thread joins before main exits.
    server.shutdown();
    println!("telemetry server stopped");

    // 7. Sharded deployment: one cross-shard query, one stitched span
    //    tree, one audit document — fetched end-to-end through the
    //    router's own debug endpoints.
    let params = HrisParams::default();
    let plan = ShardPlan::grid(&net, 2, 1, params.phi_m + 900.0);
    let seam_x = plan.core(0).max.x;
    let sharded = Arc::new(ShardedEngine::build(
        Arc::clone(&net),
        &archive,
        params,
        EngineConfig::builder()
            .observability(true) // span trees into the router trace ring
            .explain(64) // audit documents into the audit ring
            .build()
            .expect("valid config"),
        plan,
    ));
    let router_srv = sharded.serve_metrics("127.0.0.1:0").expect("bind router server");
    println!("\nrouter telemetry on http://{}", router_srv.addr());

    // A query straddling the shard seam, so routing scatters it across
    // both shards and the gather splices the halves back together.
    let y = net.bbox().center().y;
    let seam_query = Trajectory::new(
        TrajId(7_000),
        [-1_400.0, -700.0, 700.0, 1_400.0]
            .iter()
            .enumerate()
            .map(|(i, dx)| {
                GpsPoint::new(Point::new(seam_x + dx, y + i as f64 * 40.0), i as f64 * 120.0)
            })
            .collect(),
    );
    let (result, route) = sharded.infer_query_traced(&seam_query, 2);
    let rec = sharded
        .trace_ring()
        .expect("tracing is on")
        .snapshot()
        .pop()
        .expect("the query left one trace record");
    println!(
        "query {:?} via shards {:?} → {} routes, trace id {}",
        route.kind,
        route.pair_shards,
        result.globals.len(),
        rec.trace_id
    );

    // The stitched span tree: one root, every touched shard's local
    // inference, then the router-side gather and splice.
    println!("stitched span tree ({} spans):", rec.spans.len());
    let mut stack = vec![(rec.root_span, 0usize)];
    while let Some((id, depth)) = stack.pop() {
        let span = rec.spans.iter().find(|s| s.id == id).expect("span in tree");
        let attrs = span
            .attrs
            .iter()
            .map(|(k, v)| format!("{k}={}", v.to_json()))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "  {:indent$}{} ({:.2} ms) {attrs}",
            "",
            span.name,
            span.duration_s * 1e3,
            indent = depth * 2
        );
        let mut kids: Vec<u64> = rec
            .spans
            .iter()
            .filter(|s| s.parent == id)
            .map(|s| s.id)
            .collect();
        kids.reverse(); // stack pops last-first; keep start order
        for kid in kids {
            stack.push((kid, depth + 1));
        }
    }

    // The audit record, exactly as an operator would read it.
    let shards = curl(router_srv.addr(), "/debug/shards");
    println!("\n/debug/shards → {}", shards.lines().last().unwrap_or_default());
    let explain = curl(
        router_srv.addr(),
        &format!("/debug/explain/{}", rec.trace_id),
    );
    println!(
        "/debug/explain/{} → {}",
        rec.trace_id,
        explain.lines().last().unwrap_or_default()
    );

    router_srv.shutdown();
    println!("router telemetry server stopped");
}
