//! Taxi-fleet data pipeline: simulate raw multi-day GPS logs, run the
//! paper's preprocessing (stay-point detection → trip partition →
//! indexing), and report archive statistics — the offline component of
//! Figure 2.
//!
//! ```text
//! cargo run --release --example taxi_fleet
//! ```

use hris_geo::Point;
use hris_roadnet::{generator, NetworkConfig};
use hris_traj::{
    detect_stay_points, partition_trips, GpsPoint, SimConfig, Simulator, StayPointConfig, TrajId,
    Trajectory, TrajectoryArchive,
};

fn main() {
    let net = generator::generate(&NetworkConfig::default());
    let mut sim = Simulator::new(
        &net,
        SimConfig {
            num_trips: 400,
            num_od_patterns: 25,
            min_trip_dist_m: 2_000.0,
            seed: 11,
            ..SimConfig::default()
        },
    );

    // Build raw "shift logs": several trips concatenated, with idle
    // lingering at each drop-off point — exactly what a real taxi's GPS
    // log looks like before preprocessing.
    let trips = sim.generate_trips();
    let mut raw_logs: Vec<Trajectory> = Vec::new();
    for shift in trips.chunks(8) {
        let mut points: Vec<GpsPoint> = Vec::new();
        let mut clock = 0.0;
        for trip in shift {
            // Re-base this trip's timestamps onto the shift clock.
            let base = trip.trajectory.points[0].t;
            for p in &trip.trajectory.points {
                points.push(GpsPoint::new(p.pos, clock + (p.t - base)));
            }
            clock = points.last().map_or(clock, |p| p.t);
            // Idle at the drop-off for 8 minutes, jittering a few metres.
            let here = points.last().map_or(Point::ORIGIN, |p| p.pos);
            for k in 0..8 {
                clock += 60.0;
                points.push(GpsPoint::new(
                    Point::new(here.x + (k % 3) as f64 * 4.0, here.y + (k % 2) as f64 * 4.0),
                    clock,
                ));
            }
        }
        raw_logs.push(Trajectory::new(TrajId(raw_logs.len() as u32), points));
    }
    println!(
        "raw logs: {} shifts, {} total points",
        raw_logs.len(),
        raw_logs.iter().map(Trajectory::len).sum::<usize>()
    );

    // Preprocessing: stay points split shifts back into trips.
    let cfg = StayPointConfig {
        dist_threshold_m: 80.0,
        time_threshold_s: 240.0,
        max_gap_s: 1800.0,
        min_trip_points: 3,
    };
    let mut all_trips = Vec::new();
    let mut total_stays = 0;
    for log in &raw_logs {
        total_stays += detect_stay_points(log, &cfg).len();
        all_trips.extend(partition_trips(log, &cfg));
    }
    println!(
        "preprocessing: {} stay points detected, {} effective trips recovered",
        total_stays,
        all_trips.len()
    );

    let archive = TrajectoryArchive::new(all_trips);
    println!(
        "archive: {} trips / {} points indexed in the R-tree",
        archive.num_trajectories(),
        archive.num_points()
    );

    // Archive statistics the paper reports about its Beijing dataset:
    // sampling-interval distribution (how much of the data is low-rate).
    let mut low_rate = 0usize;
    let mut intervals: Vec<f64> = Vec::new();
    for t in archive.trajectories() {
        if t.len() >= 2 {
            let iv = t.mean_interval();
            intervals.push(iv);
            if iv > 120.0 {
                low_rate += 1;
            }
        }
    }
    intervals.sort_by(f64::total_cmp);
    let pct = |q: f64| intervals[((intervals.len() - 1) as f64 * q) as usize];
    println!(
        "sampling intervals: median {:.0} s, p90 {:.0} s — {:.0}% of trips are low-rate (> 2 min)",
        pct(0.5),
        pct(0.9),
        100.0 * low_rate as f64 / intervals.len() as f64
    );

    // Persist and reload the archive (binary codec).
    let blob = archive.to_bytes();
    let restored = TrajectoryArchive::from_bytes(blob.clone()).expect("roundtrip");
    println!(
        "persistence: {} bytes on disk, {} trips after reload",
        blob.len(),
        restored.num_trajectories()
    );
}
