//! Live ingestion: serve route-inference queries from an owned
//! [`EngineHandle`] while new taxi traces stream into the archive through an
//! [`ArchiveWriter`], epoch by epoch — no rebuild, no downtime.
//!
//! ```text
//! cargo run --release --example live_ingestion
//! ```

use hris::prelude::*;
use hris_roadnet::{generator, NetworkConfig};
use hris_traj::{resample_to_interval, simulator, SimConfig, Simulator, TrajId, Trajectory};
use std::sync::Arc;

fn main() {
    // 1. A city and a day-one archive: only the first 400 simulated trips
    //    have arrived so far.
    let net = Arc::new(generator::generate(&NetworkConfig::default()));
    let mut sim = Simulator::new(
        &net,
        SimConfig {
            num_trips: 1200,
            num_od_patterns: 40,
            min_trip_dist_m: 3_000.0,
            seed: 7,
            ..SimConfig::default()
        },
    );
    let (archive, _truth) = sim.generate_archive();
    let mut trips = archive.trajectories().to_vec();
    let stream = trips.split_off(400);

    // 2. A writer owns the mutable archive; the engine handle follows its
    //    published snapshots. The handle is Send + Sync + 'static — share
    //    it behind an Arc with as many query threads as you like.
    let mut writer = ArchiveWriter::new(TrajectoryArchive::new(trips));
    let handle = Arc::new(EngineHandle::live(
        Arc::clone(&net),
        writer.reader(),
        HrisParams::default(),
        EngineConfig::default(),
    ));

    // 3. A query that will repeat as the archive grows.
    let (_, _, route) = sim
        .od_with_dist(4_000.0, 6_000.0)
        .expect("found a suitable trip");
    let dense = simulator::drive_route(&net, &route, 0.0, 20.0, 0.8).expect("route drivable");
    let query = resample_to_interval(&Trajectory::new(TrajId(0), dense), 180.0);

    // 4. Interleave: queries on one thread, ingestion on this one. Each
    //    publish makes a new immutable epoch; queries in flight keep the
    //    epoch they started on.
    let answers = {
        let handle = Arc::clone(&handle);
        let query = query.clone();
        std::thread::spawn(move || {
            let mut seen = Vec::new();
            for _ in 0..8 {
                let r = handle.infer_query(&query, 1);
                seen.push((handle.epoch(), r.globals.len()));
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            seen
        })
    };
    for chunk in stream.chunks(100) {
        writer.append_batch(chunk.to_vec());
        let snap = writer.publish();
        println!(
            "published epoch {}: {} trips, {} points",
            snap.epoch(),
            snap.num_trajectories(),
            snap.num_points()
        );
    }
    for (epoch, k) in answers.join().expect("query thread") {
        println!("query answered against epoch {epoch}: {k} route(s)");
    }

    // 5. The writer's report is the ingestion audit trail.
    let report = writer.report();
    println!(
        "ingested {} trips / {} points across {} epochs ({} quarantined)",
        report.trajectories_appended,
        report.points_appended,
        report.epochs_published,
        report.trajectories_quarantined
    );
}
