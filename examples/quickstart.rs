//! Quickstart: build a city, simulate a taxi archive, infer the route of a
//! low-sampling-rate trajectory, and compare it against the ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hris::prelude::*;
use hris_eval::metrics::accuracy_al;
use hris_roadnet::{generator, NetworkConfig};
use hris_traj::{resample_to_interval, simulator, SimConfig, Simulator, TrajId, Trajectory};

fn main() {
    // 1. A synthetic city: perturbed grid with arterials and one-ways.
    let net = generator::generate(&NetworkConfig::default());
    println!(
        "city: {} intersections, {} road segments, V_max = {:.0} km/h",
        net.num_nodes(),
        net.num_segments(),
        net.max_speed() * 3.6
    );

    // 2. A historical archive from a simulated taxi fleet with skewed
    //    route choice (the paper's Observation 1).
    let mut sim = Simulator::new(
        &net,
        SimConfig {
            num_trips: 1500,
            num_od_patterns: 40,
            min_trip_dist_m: 3_000.0,
            seed: 7,
            ..SimConfig::default()
        },
    );
    let (archive, _truth) = sim.generate_archive();
    println!(
        "archive: {} trips, {} GPS points",
        archive.num_trajectories(),
        archive.num_points()
    );

    // 3. A query: someone drove a 4+ km trip, but their GPS only reported
    //    every 3 minutes.
    let (_, _, route) = sim
        .od_with_dist(4_000.0, 6_000.0)
        .expect("found a suitable trip");
    let dense_points =
        simulator::drive_route(&net, &route, 0.0, 20.0, 0.8).expect("route drivable");
    let dense = Trajectory::new(TrajId(0), dense_points);
    let query = resample_to_interval(&dense, 180.0);
    println!(
        "query: {} points over {:.1} min covering {:.1} km (true route)",
        query.len(),
        query.duration() / 60.0,
        route.length(&net) / 1000.0
    );

    // 4. Infer the top-3 routes with HRIS.
    let hris = Hris::new(&net, archive, HrisParams::default());
    let suggestions = hris.infer_routes(&query, 3);
    for (i, s) in suggestions.iter().enumerate() {
        println!(
            "  suggestion {}: {:.1} km, log-score {:.2}, accuracy vs truth A_L = {:.3}",
            i + 1,
            s.route.length(&net) / 1000.0,
            s.log_score,
            accuracy_al(&route, &s.route, &net)
        );
    }
    let top1 = &suggestions[0];
    println!(
        "top-1 route matches {:.0}% of the true route",
        accuracy_al(&route, &top1.route, &net) * 100.0
    );
}
